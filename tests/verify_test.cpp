// Tests for the verification subsystem (src/analysis/verify): the exhaustive
// small-scope model checker over the abstract engine protocol, and the
// happens-before verifier for recorded Chrome-trace documents.
//
// The negative fixtures are the point: each seeded protocol bug and each
// synthetic trace corruption must produce its specific V-code with a minimal
// counterexample, while everything the repo ships verifies clean.
#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/verify/model_checker.hpp"
#include "analysis/verify/trace_verifier.hpp"
#include "core/presets.hpp"
#include "dnn/models.hpp"
#include "hvd/protocol.hpp"
#include "hvd/timeline.hpp"
#include "hw/platforms.hpp"
#include "train/real_trainer.hpp"
#include "util/trace.hpp"

namespace dnnperf {
namespace {

// ---------------------------------------------------------------------------
// Model checker: positive coverage
// ---------------------------------------------------------------------------

TEST(ModelChecker, ExhaustiveThreeRanksFourTensorsCompletes) {
  // The acceptance bound: >= 3 ranks x >= 4 tensors explored exhaustively,
  // well under the 5 s budget. Rotated submission orders make every rank a
  // distinct symmetry class, i.e. no state-space collapse flatters the time.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(3, {4, 2, 2, 1}, 5,
                                                      /*rotate_by_rank=*/true);
  spec.name = "exhaustive-3x4";

  const auto start = std::chrono::steady_clock::now();
  const analysis::ModelCheckResult result = analysis::check_protocol(spec);
  const double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
  EXPECT_GT(result.states_explored, 100u);  // genuinely explored, not short-circuited
  EXPECT_GT(result.transitions, result.states_explored);
  EXPECT_LT(seconds, 5.0);
}

TEST(ModelChecker, SymmetricRanksCollapseStateSpace) {
  // Identical submission programs are interchangeable; the canonical key
  // must make the symmetric instance strictly cheaper than the rotated one.
  hvd::ProtocolSpec rotated = hvd::ProtocolSpec::uniform(3, {2, 2, 1, 1}, 3, true);
  hvd::ProtocolSpec symmetric = hvd::ProtocolSpec::uniform(3, {2, 2, 1, 1}, 3, false);
  const auto r = analysis::check_protocol(rotated);
  const auto s = analysis::check_protocol(symmetric);
  EXPECT_TRUE(r.goal_reached);
  EXPECT_TRUE(s.goal_reached);
  EXPECT_LT(s.states_explored, r.states_explored);
}

TEST(ModelChecker, OversizedTensorBypassingFusionIsClean) {
  // The Horovod rule: a tensor above the threshold ships alone, unfused.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {10, 2}, 4);
  spec.name = "oversized-bypass";
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, MalformedSpecThrows) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.submit_order[1] = {0, 0};  // not a permutation
  EXPECT_THROW(analysis::check_protocol(spec), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Model checker: negative fixtures (one per V code)
// ---------------------------------------------------------------------------

TEST(ModelChecker, DeadlockUnderPermutedOrdersAndBoundedWindow) {
  // The classic hang: two ranks submit in opposite orders while a window of 1
  // blocks each on its first gradient; the readiness intersection stays empty.
  hvd::ProtocolSpec spec;
  spec.ranks = 2;
  spec.tensor_elements = {1, 1};
  spec.capacity_elems = 2;
  spec.max_outstanding = 1;
  spec.submit_order = {{0, 1}, {1, 0}};
  spec.name = "deadlock-fixture";

  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V001")) << util::render_text(result.diags);
  // BFS order makes the trace minimal: one submit per rank, then stuck.
  ASSERT_EQ(result.counterexample.size(), 3u);
  EXPECT_EQ(result.counterexample[0], "r0 submits t0");
  EXPECT_EQ(result.counterexample[1], "r1 submits t1");
  // The hint carries the rendered counterexample for the CLI/CI output.
  const auto& d = result.diags.items().front();
  EXPECT_NE(d.hint.find("counterexample:"), std::string::npos);
  EXPECT_NE(d.hint.find("fix:"), std::string::npos);
}

TEST(ModelChecker, SameOrderSubmissionUnderWindowIsDeadlockFree) {
  // Control for the fixture above: identical orders under the same window
  // complete — the permutation, not the window, is the bug.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.max_outstanding = 1;
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, StarvationUnderStrictCapacity) {
  // A tensor larger than a strict-capacity fusion buffer can never ship:
  // V002 names the root cause statically, and the BFS still finds the
  // concrete stuck run (V001).
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {10, 2}, 4);
  spec.allow_oversized = false;
  spec.name = "starvation-fixture";
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.has_code("V002")) << util::render_text(result.diags);
  EXPECT_TRUE(result.diags.has_code("V001"));
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(ModelChecker, ReissueCompletedBugCaughtAsAccountingViolation) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 1);
  spec.variant = hvd::EngineVariant::ReissueCompleted;
  spec.name = "reissue-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V003")) << util::render_text(result.diags);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(ModelChecker, MaxCoordinationBugCaughtAsReadinessViolation) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::MaxCoordination;
  spec.name = "max-coordination-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V005")) << util::render_text(result.diags);
  EXPECT_FALSE(result.counterexample.empty());
}

TEST(ModelChecker, UncappedPackingBugCaughtAsOverflow) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {3, 3}, 4);
  spec.variant = hvd::EngineVariant::UncappedPacking;
  spec.name = "uncapped-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V004")) << util::render_text(result.diags);
  EXPECT_FALSE(result.counterexample.empty());
}

// ---------------------------------------------------------------------------
// Hierarchical (two-level) negotiation variant
// ---------------------------------------------------------------------------

/// Two groups of two ranks under a window of 2, with the groups' programs
/// offset so the per-group bitmaps fill as {t0,t1} vs {t1,t2}: a non-empty
/// intersection the correct parent level must find.
hvd::ProtocolSpec two_group_offset_spec() {
  hvd::ProtocolSpec spec;
  spec.ranks = 4;
  spec.tensor_elements = {1, 1, 1};
  spec.capacity_elems = 3;
  spec.max_outstanding = 2;
  spec.submit_order = {{0, 1, 2}, {0, 1, 2}, {1, 2, 0}, {1, 2, 0}};
  spec.group_size = 2;
  return spec;
}

TEST(ModelChecker, HierarchicalVariantMatchesFlatMinReduceAndVerifiesClean) {
  // AND is associative: per-group Min-reduces followed by a parent Min-reduce
  // equal the flat intersection, so the staged variant must verify clean on
  // the same spec that deadlocks the ParentStall bug below.
  hvd::ProtocolSpec spec = two_group_offset_spec();
  spec.variant = hvd::EngineVariant::Hierarchical;
  spec.name = "hierarchical-clean";
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, HierarchicalThreeNodesTwoLevelsIsClean) {
  // The acceptance bound: 3 nodes x 2 ranks negotiated in two levels, with
  // rotated submission orders, explored exhaustively and clean.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(6, {2, 2, 1}, 3,
                                                      /*rotate_by_rank=*/true);
  spec.group_size = 2;
  spec.variant = hvd::EngineVariant::Hierarchical;
  spec.name = "hierarchical-3x2";
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, HierarchicalParentStallDeadlocksWithMinimalTrace) {
  // The seeded two-level bug: the child level completes (both group bitmaps
  // are full windows), but the parent compares instead of intersecting, so
  // {t0,t1} vs {t1,t2} ships nothing while every rank is window-blocked.
  hvd::ProtocolSpec spec = two_group_offset_spec();
  spec.variant = hvd::EngineVariant::HierarchicalParentStall;
  spec.name = "parent-stall-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V001")) << util::render_text(result.diags);
  // Minimal counterexample: exactly the 8 submissions that fill every rank's
  // window (2 per rank), then stuck — no shorter path reaches a deadlock.
  EXPECT_EQ(result.counterexample.size(), 9u);
  EXPECT_EQ(result.counterexample.back(), "stuck");
}

TEST(ModelChecker, StandardVariantProgressesWhereParentStallHangs) {
  // Control: the same spec under the flat Min-reduce completes — the parent
  // comparison, not the window or the orders, is the bug.
  hvd::ProtocolSpec spec = two_group_offset_spec();
  spec.group_size = 0;
  spec.name = "parent-stall-control";
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, GroupedSpecValidation) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(4, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::Hierarchical;
  EXPECT_THROW(analysis::check_protocol(spec), std::invalid_argument);  // group_size unset
  spec.group_size = 3;  // does not divide ranks
  EXPECT_THROW(analysis::check_protocol(spec), std::invalid_argument);
  spec.group_size = 2;
  EXPECT_TRUE(analysis::check_protocol(spec).diags.empty());
}

TEST(ModelChecker, GroupRefinedSymmetryStaysSound) {
  // Ranks 0 and 2 run the same program but sit in different groups; folding
  // them into one symmetry class would sort positions across groups and
  // merge states whose group bitmaps — and hence Hierarchical* futures —
  // differ. Grouped specs must refine classes by group.
  hvd::ProtocolSpec spec = two_group_offset_spec();
  spec.submit_order = {{0, 1, 2}, {1, 2, 0}, {0, 1, 2}, {1, 2, 0}};
  spec.variant = hvd::EngineVariant::Hierarchical;
  spec.name = "group-symmetry-fixture";
  const auto classes = hvd::symmetry_classes(spec);
  EXPECT_NE(classes[0], classes[2]);  // same program, different group
  EXPECT_NE(classes[1], classes[3]);
  // Ungrouped, the same programs do collapse — the refinement is the only
  // thing keeping them apart.
  hvd::ProtocolSpec flat = spec;
  flat.group_size = 0;
  flat.variant = hvd::EngineVariant::Standard;
  const auto flat_classes = hvd::symmetry_classes(flat);
  EXPECT_EQ(flat_classes[0], flat_classes[2]);
  EXPECT_EQ(flat_classes[1], flat_classes[3]);
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ModelChecker, HierarchicalPresetConfigVerifiesClean) {
  // verify_config_engine adds the staged-variant patterns when the config
  // asks for a hierarchy; the shipped tuning must stay clean under them.
  for (const auto& cluster : hw::all_clusters()) {
    if (cluster.node.has_gpu()) continue;
    const int nodes = std::min(2, cluster.max_nodes);
    if (nodes < 2) continue;
    train::TrainConfig cfg = core::tf_best(cluster, dnn::ModelId::ResNet50, nodes);
    cfg.hierarchy = train::CommHierarchy::TwoLevel;
    const util::Diagnostics diags = analysis::verify_config_engine(cfg);
    EXPECT_TRUE(diags.empty()) << cluster.name << ":\n" << util::render_text(diags);
  }
}

TEST(ModelChecker, TruncatedExplorationWarns) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(3, {1, 1, 1, 1}, 4, true);
  analysis::ModelCheckOptions options;
  options.max_states = 2;
  const auto result = analysis::check_protocol(spec, options);
  EXPECT_FALSE(result.complete);
  EXPECT_TRUE(result.diags.has_code("V006")) << util::render_text(result.diags);
  EXPECT_EQ(result.diags.count(util::Severity::Error), 0u);
}

// ---------------------------------------------------------------------------
// Elastic protocol: crash/rejoin interleavings (V2xx)
// ---------------------------------------------------------------------------

TEST(ElasticChecker, StandardElasticThreeRanksTwoFaultsVerifiesClean) {
  // The acceptance bound: 3 ranks x 4 tensors under a budget of 2 fault
  // events interleaved at every reachable state, exhaustively, under 5 s.
  // The correct elastic engine is just the Standard variant: the Min-reduce
  // over alive ranks re-forms on crash, rejoin re-keys the window (pos = 0),
  // and the completed mask makes resubmissions harmless.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(3, {2, 2, 1}, 3,
                                                      /*rotate_by_rank=*/true);
  spec.max_fault_events = 2;
  spec.name = "elastic-clean-3x3";

  const auto start = std::chrono::steady_clock::now();
  const analysis::ModelCheckResult result = analysis::check_protocol(spec);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.goal_reached);
  // Fault interleaving genuinely grows the space over the fault-free check.
  hvd::ProtocolSpec healthy = spec;
  healthy.max_fault_events = 0;
  EXPECT_GT(result.states_explored, analysis::check_protocol(healthy).states_explored);
  EXPECT_LT(seconds, 5.0);
}

TEST(ElasticChecker, CrashBlindDeadlocksAsV201) {
  // The seeded bug: the readiness Min-reduce still spans crashed ranks, so
  // after the crash the intersection is pinned empty and survivors hang.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::ElasticCrashBlind;
  spec.max_fault_events = 1;
  spec.name = "crash-blind-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V201")) << util::render_text(result.diags);
  EXPECT_FALSE(result.diags.has_code("V001"));  // classified, not the generic code
  // Minimal trace: r0's two submissions, the crash, stuck — no shorter run
  // can both exhaust submissions and have a rank down.
  ASSERT_EQ(result.counterexample.size(), 4u) << util::render_text(result.diags);
  EXPECT_EQ(result.counterexample.back(), "stuck");
  EXPECT_NE(result.diags.items().front().message.find("crash"), std::string::npos);
}

TEST(ElasticChecker, LostGradientCaughtAsV202AtTheCrashTransition) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1}, 1);
  spec.variant = hvd::EngineVariant::ElasticLostGradient;
  spec.max_fault_events = 1;
  spec.name = "lost-gradient-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V202")) << util::render_text(result.diags);
  // Golden minimal counterexample: one submission, then the crash that
  // silently completes it.
  ASSERT_EQ(result.counterexample.size(), 2u);
  EXPECT_EQ(result.counterexample[0], "r0 submits t0");
  EXPECT_EQ(result.counterexample[1], "r0 crashes");
}

TEST(ElasticChecker, GhostContributionCaughtAsV203) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1}, 1);
  spec.variant = hvd::EngineVariant::ElasticGhost;
  spec.max_fault_events = 1;
  spec.name = "ghost-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V203")) << util::render_text(result.diags);
  EXPECT_FALSE(result.diags.has_code("V005"));  // elastic classification wins
  // Golden minimal counterexample: submit, crash, and the cycle that counts
  // the dead rank's stale readiness bit.
  ASSERT_EQ(result.counterexample.size(), 3u);
  EXPECT_EQ(result.counterexample[0], "r0 submits t0");
  EXPECT_EQ(result.counterexample[1], "r0 crashes");
  EXPECT_NE(result.counterexample[2].find("allreduce"), std::string::npos);
}

TEST(ElasticChecker, DoubleCountOnRejoinCaughtAsV204) {
  // Two tensors so t0's completion is not the goal state: goal states are
  // terminal in the BFS, so the replaying crash+rejoin must land mid-run.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 1);
  spec.variant = hvd::EngineVariant::ElasticDoubleCount;
  spec.max_fault_events = 2;  // one crash + the rejoin that replays
  spec.name = "double-count-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V204")) << util::render_text(result.diags);
  EXPECT_FALSE(result.diags.has_code("V003"));  // rejoin replay, not re-issue
  // Minimal trace: both ranks submit, the tensor ships, crash + rejoin clear
  // the completion mask, and the next cycle ships it again.
  ASSERT_EQ(result.counterexample.size(), 6u) << util::render_text(result.diags);
  EXPECT_NE(result.counterexample[2].find("allreduce"), std::string::npos);
  EXPECT_NE(result.counterexample[4].find("rejoins"), std::string::npos);
  EXPECT_NE(result.counterexample[5].find("allreduce"), std::string::npos);
}

TEST(ElasticChecker, RegrowStallCaughtAsV205) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::ElasticRegrowStall;
  spec.max_fault_events = 2;
  spec.name = "regrow-stall-fixture";
  const auto result = analysis::check_protocol(spec);
  ASSERT_TRUE(result.diags.has_code("V205")) << util::render_text(result.diags);
  EXPECT_FALSE(result.diags.has_code("V201"));
  EXPECT_EQ(result.counterexample.back(), "stuck");
  EXPECT_NE(result.diags.items().front().message.find("rejoin"), std::string::npos);
}

TEST(ElasticChecker, MinAliveBoundsTheCrashBudget) {
  // min_alive = ranks forbids every crash: the elastic exploration collapses
  // to the healthy one and even a buggy variant has no fault to expose it.
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::ElasticCrashBlind;
  spec.max_fault_events = 2;
  spec.min_alive = 2;
  const auto result = analysis::check_protocol(spec);
  EXPECT_TRUE(result.diags.empty()) << util::render_text(result.diags);
  EXPECT_TRUE(result.goal_reached);
}

TEST(ElasticChecker, ElasticVariantsRequireAFaultBudget) {
  hvd::ProtocolSpec spec = hvd::ProtocolSpec::uniform(2, {1, 1}, 2);
  spec.variant = hvd::EngineVariant::ElasticCrashBlind;
  spec.max_fault_events = 0;
  EXPECT_THROW(analysis::check_protocol(spec), std::invalid_argument);
}

TEST(ElasticChecker, ShippedPresetsVerifyElasticClean) {
  // Every shipped tuned preset's protocol must survive crash/rejoin
  // interleavings — the correct elastic engine is the one we model, so a
  // finding here is a real protocol regression, not a seeded fixture.
  for (const auto& cluster : hw::all_clusters()) {
    if (cluster.node.has_gpu()) continue;
    const int nodes = std::min(2, cluster.max_nodes);
    const train::TrainConfig cfg = core::tf_best(cluster, dnn::ModelId::ResNet50, nodes);
    const util::Diagnostics diags = analysis::verify_config_elastic(cfg);
    EXPECT_TRUE(diags.empty()) << cluster.name << ":\n" << util::render_text(diags);
  }
}

// ---------------------------------------------------------------------------
// Shipped configurations verify clean
// ---------------------------------------------------------------------------

TEST(ModelChecker, ShippedPresetsVerifyClean) {
  // The tuned presets drive the paper figures; their engine protocol must
  // model-check clean under every canonical submission pattern. (The full
  // preset sweep also runs as the VerifyEngineShipped ctest via dnnperf_lint.)
  for (const auto& cluster : hw::all_clusters()) {
    if (cluster.node.has_gpu()) continue;
    const int nodes = std::min(2, cluster.max_nodes);
    const train::TrainConfig cfg = core::tf_best(cluster, dnn::ModelId::ResNet50, nodes);
    const util::Diagnostics diags = analysis::verify_config_engine(cfg);
    EXPECT_TRUE(diags.empty()) << cluster.name << ":\n" << util::render_text(diags);
  }
}

// ---------------------------------------------------------------------------
// Trace verifier: recorded artifacts
// ---------------------------------------------------------------------------

/// Every trace test starts and ends with a clean, disabled trace state.
class VerifyTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    util::trace::set_enabled(false);
    util::trace::reset();
  }
  void TearDown() override {
    util::trace::set_enabled(false);
    util::trace::reset();
  }

  static std::string dump() {
    std::ostringstream os;
    util::trace::write_json(os);
    return os.str();
  }

  static std::string record_real_training() {
    util::trace::set_enabled(true);
    train::RealTrainConfig cfg;
    cfg.ranks = 2;
    cfg.batch_per_rank = 2;
    cfg.steps = 2;
    (void)train::run_real_training(cfg);
    util::trace::set_enabled(false);
    return dump();
  }
};

TEST_F(VerifyTrace, FreshTwoRankTrainingTraceVerifiesClean) {
  const std::string text = record_real_training();
  const util::Diagnostics diags = analysis::verify_trace_text(text, "real-2rank");
  EXPECT_TRUE(diags.empty()) << util::render_text(diags);
}

TEST_F(VerifyTrace, MutatedTrainingTraceFailsCrossRankMatching) {
  // Renaming one data allreduce drops it from one rank's cycle sequence —
  // exactly the desynchronized recording V103 exists to catch.
  std::string text = record_real_training();
  const auto at = text.find("\"name\":\"allreduce.data\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 23, "\"name\":\"allreduce.drop\"");
  const util::Diagnostics diags = analysis::verify_trace_text(text, "mutated-2rank");
  EXPECT_TRUE(diags.has_code("V103")) << util::render_text(diags);
}

TEST_F(VerifyTrace, SimulatedTimelineTraceVerifiesClean) {
  util::trace::set_enabled(true);
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  hvd::TimelineInput in;
  in.fwd_time = 0.1;
  in.bwd_time = 0.2;
  in.optimizer_time = 0.01;
  in.iterations = 2;
  in.cost = &cost;
  for (int i = 0; i < 5; ++i) in.grad_events.push_back({0.02 * (i + 1), 1e6});
  (void)hvd::simulate_training(in);
  util::trace::set_enabled(false);

  const util::Diagnostics diags = analysis::verify_trace_text(dump(), "des-timeline");
  EXPECT_TRUE(diags.empty()) << util::render_text(diags);
}

// ---------------------------------------------------------------------------
// Trace verifier: synthetic corruptions (one per V code)
// ---------------------------------------------------------------------------

std::string trace_doc(const std::string& events) {
  return "{\"traceEvents\":[" + events + "]}";
}

std::string span(const char* name, int tid, double ts, double dur,
                 const std::string& args = {}) {
  std::string e = "{\"name\":\"" + std::string(name) + "\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
                  std::to_string(tid) + ",\"ts\":" + std::to_string(ts) +
                  ",\"dur\":" + std::to_string(dur);
  if (!args.empty()) e += ",\"args\":{" + args + "}";
  return e + "}";
}

std::string rank_meta(int tid, int rank) {
  return "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
         ",\"ts\":0,\"args\":{\"name\":\"rank " + std::to_string(rank) + "\"}}";
}

TEST_F(VerifyTrace, UnparseableDocumentIsV101) {
  EXPECT_TRUE(analysis::verify_trace_text("not json at all", "bad").has_code("V101"));
  EXPECT_TRUE(analysis::verify_trace_text("{}", "bad").has_code("V101"));
}

TEST_F(VerifyTrace, MissingRequiredFieldsIsV101) {
  // A complete event without dur.
  const std::string text =
      trace_doc("{\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0}");
  EXPECT_TRUE(analysis::verify_trace_text(text, "bad").has_code("V101"));
}

TEST_F(VerifyTrace, PartiallyOverlappingSpansAreV102) {
  const std::string text = trace_doc(span("a", 1, 0, 10) + "," + span("b", 1, 5, 10));
  const util::Diagnostics diags = analysis::verify_trace_text(text, "overlap");
  EXPECT_TRUE(diags.has_code("V102")) << util::render_text(diags);
}

TEST_F(VerifyTrace, ProperlyNestedSpansAreNotV102) {
  const std::string text = trace_doc(span("a", 1, 0, 10) + "," + span("b", 1, 2, 4));
  EXPECT_FALSE(analysis::verify_trace_text(text, "nested").has_code("V102"));
}

TEST_F(VerifyTrace, CrossRankByteMismatchIsV103) {
  const std::string text = trace_doc(
      rank_meta(11, 0) + "," + rank_meta(12, 1) + "," +
      span("engine.cycle", 11, 0, 100) + "," +
      span("allreduce.data", 11, 10, 10, "\"bytes\":100") + "," +
      span("engine.cycle", 12, 0, 100) + "," +
      span("allreduce.data", 12, 10, 10, "\"bytes\":200"));
  const util::Diagnostics diags = analysis::verify_trace_text(text, "bytes-mismatch");
  EXPECT_TRUE(diags.has_code("V103")) << util::render_text(diags);
}

TEST_F(VerifyTrace, CrossRankCycleCountMismatchIsV103) {
  const std::string text = trace_doc(
      rank_meta(11, 0) + "," + rank_meta(12, 1) + "," +
      span("engine.cycle", 11, 0, 100) + "," + span("engine.cycle", 11, 200, 100) + "," +
      span("engine.cycle", 12, 0, 100));
  const util::Diagnostics diags = analysis::verify_trace_text(text, "count-mismatch");
  EXPECT_TRUE(diags.has_code("V103")) << util::render_text(diags);
}

TEST_F(VerifyTrace, MatchedRanksAreNotV103) {
  const std::string text = trace_doc(
      rank_meta(11, 0) + "," + rank_meta(12, 1) + "," +
      span("engine.cycle", 11, 0, 100) + "," +
      span("allreduce.data", 11, 10, 10, "\"bytes\":100") + "," +
      span("engine.cycle", 12, 5, 100) + "," +
      span("allreduce.data", 12, 15, 10, "\"bytes\":100"));
  EXPECT_TRUE(analysis::verify_trace_text(text, "matched").empty());
}

TEST_F(VerifyTrace, OverlappingEngineCyclesAreV104) {
  // Nested, so V102 stays silent — the violation is purely the cycle order.
  const std::string text =
      trace_doc(span("engine.cycle", 1, 0, 10) + "," + span("engine.cycle", 1, 2, 6));
  const util::Diagnostics diags = analysis::verify_trace_text(text, "cycle-overlap");
  EXPECT_TRUE(diags.has_code("V104")) << util::render_text(diags);
  EXPECT_FALSE(diags.has_code("V102"));
}

TEST_F(VerifyTrace, UnreadableFileIsV101) {
  const util::Diagnostics diags =
      analysis::verify_trace_file("/nonexistent/dnnperf-trace.json");
  EXPECT_TRUE(diags.has_code("V101"));
}

}  // namespace
}  // namespace dnnperf
