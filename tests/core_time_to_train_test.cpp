#include <gtest/gtest.h>

#include "core/presets.hpp"
#include "core/time_to_train.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::core {
namespace {

TEST(StatisticalEfficiency, FlatThenLogarithmic) {
  StatisticalEfficiency eff;
  EXPECT_DOUBLE_EQ(eff.epochs_needed(256), eff.base_epochs);
  EXPECT_DOUBLE_EQ(eff.epochs_needed(8192), eff.base_epochs);
  EXPECT_NEAR(eff.epochs_needed(16384), eff.base_epochs * 1.35, 1e-9);
  EXPECT_NEAR(eff.epochs_needed(32768), eff.base_epochs * 1.70, 1e-9);
  EXPECT_THROW(eff.epochs_needed(0), std::invalid_argument);
}

TEST(TimeToTrain, MoreNodesTrainFasterDespiteBatchPenalty) {
  auto cfg = tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 8);
  const auto small = estimate_time_to_train(cfg);
  cfg.nodes = 128;
  const auto big = estimate_time_to_train(cfg);
  EXPECT_GT(big.images_per_sec, small.images_per_sec * 10);
  EXPECT_GE(big.epochs, small.epochs);  // bigger effective batch
  EXPECT_LT(big.hours, small.hours);    // throughput still wins here
}

TEST(TimeToTrain, BatchTradeoffTurnsAroundAtScale) {
  // At 128 nodes x 4 ppn, BS/rank 64 means an effective batch of 32768 —
  // deep in the penalty regime. Time-to-train must stop improving even
  // though throughput keeps climbing.
  auto cfg = tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 128);
  cfg.batch_per_rank = 8;   // effective 4096: no penalty
  const auto modest = estimate_time_to_train(cfg);
  cfg.batch_per_rank = 16;  // effective 8192: boundary
  const auto boundary = estimate_time_to_train(cfg);
  cfg.batch_per_rank = 64;  // effective 32768: penalized
  const auto huge = estimate_time_to_train(cfg);

  EXPECT_GT(huge.images_per_sec, boundary.images_per_sec);
  EXPECT_GT(boundary.images_per_sec, modest.images_per_sec);
  // The hours-optimal point is not the throughput-optimal point.
  EXPECT_LT(boundary.hours, modest.hours);
  EXPECT_GT(huge.epochs, boundary.epochs);
}

TEST(TimeToTrain, TableHasOneRowPerBatch) {
  auto cfg = tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 4);
  const auto table = batch_tradeoff_table(cfg, {16, 32, 64});
  EXPECT_EQ(table.rows(), 3u);
}

}  // namespace
}  // namespace dnnperf::core
