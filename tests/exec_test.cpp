#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "exec/cpu_model.hpp"
#include "exec/gpu_model.hpp"
#include "exec/placement.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::exec {
namespace {

ExecConfig tf_config(int intra, int inter, int batch, bool hvd = false) {
  ExecConfig cfg;
  cfg.framework = Framework::TensorFlow;
  cfg.intra_threads = intra;
  cfg.inter_threads = inter;
  cfg.batch = batch;
  cfg.horovod_thread = hvd;
  return cfg;
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(Placement, SingleDomainRankKeepsLocalBandwidth) {
  const auto cpu = hw::stampede2().node.cpu;  // 2x24, 1 domain per socket
  const Placement p = place_rank(cpu, /*ppn=*/2, /*threads=*/23);
  EXPECT_EQ(p.cores, 24);
  EXPECT_EQ(p.numa_domains_spanned, 1);
  EXPECT_EQ(p.numa_time_penalty, 0.0);
  EXPECT_NEAR(p.mem_bw_gbps, cpu.mem_bw_gbps() / 2, 1.0);
}

TEST(Placement, SpanningProcessPaysNumaPenalty) {
  const auto cpu = hw::stampede2().node.cpu;
  const Placement whole = place_rank(cpu, 1, 48);
  EXPECT_EQ(whole.numa_domains_spanned, 2);
  EXPECT_GT(whole.numa_time_penalty, 0.0);
  // First-touch: the spanning process sees less than full node bandwidth.
  EXPECT_LT(whole.mem_bw_gbps, cpu.mem_bw_gbps());
  // ...but more than one socket's worth.
  EXPECT_GT(whole.mem_bw_gbps, cpu.mem_bw_per_socket_gbps);
}

TEST(Placement, FewThreadsStayLocalEvenInWideProcess) {
  const auto cpu = hw::ri2_skylake().node.cpu;  // 2x14
  const Placement p = place_rank(cpu, 1, 14);
  EXPECT_EQ(p.numa_domains_spanned, 1);
  const Placement q = place_rank(cpu, 1, 28);
  EXPECT_EQ(q.numa_domains_spanned, 2);
}

TEST(Placement, EpycSubdomainRanksShareDieBandwidth) {
  const auto cpu = hw::amd_cluster().node.cpu;  // 8 domains x 8 cores
  const Placement p = place_rank(cpu, 16, 5);   // 4 cores per rank, half a die
  EXPECT_EQ(p.cores, 4);
  EXPECT_EQ(p.numa_domains_spanned, 1);
  EXPECT_LT(p.mem_bw_gbps, cpu.mem_bw_gbps() / 8 + 1.0);
}

TEST(Placement, RejectsBadArguments) {
  const auto cpu = hw::stampede2().node.cpu;
  EXPECT_THROW(place_rank(cpu, 0, 4), std::invalid_argument);
  EXPECT_THROW(place_rank(cpu, 4, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CPU execution model
// ---------------------------------------------------------------------------

class ThreadScalingParam : public ::testing::TestWithParam<int> {};

TEST_P(ThreadScalingParam, MoreThreadsNeverSlowerWithinOneSocket) {
  const int threads = GetParam();
  const auto cpu = hw::ri2_skylake().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const auto t1 = model.forward(g, tf_config(1, 1, 64), place_rank(cpu, 1, 1)).duration;
  const auto tn =
      model.forward(g, tf_config(threads, 1, 64), place_rank(cpu, 1, threads)).duration;
  EXPECT_LT(tn, t1);
  // No superlinear scaling.
  EXPECT_GT(tn, t1 / (threads * 1.05));
}

INSTANTIATE_TEST_SUITE_P(UpToSocket, ThreadScalingParam, ::testing::Values(2, 4, 8, 14));

TEST(CpuExecModel, ScalingKneesAtSocketBoundary) {
  // Fig 1a: gain from 14 -> 28 threads is much smaller than 7 -> 14.
  const auto cpu = hw::ri2_skylake().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  auto rate = [&](int t) {
    return 1.0 / model.forward(g, tf_config(t, 1, 128), place_rank(cpu, 1, t)).duration;
  };
  const double gain_7_14 = rate(14) / rate(7);
  const double gain_14_28 = rate(28) / rate(14);
  EXPECT_GT(gain_7_14, 1.45);
  EXPECT_LT(gain_14_28, gain_7_14 - 0.1);
}

TEST(CpuExecModel, OversubscribedSmtIsSlowerThanAllCores) {
  // Fig 4: 96 threads on 48-core SMT Skylake-3 is worse than 48 threads.
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const double t48 = model.forward(g, tf_config(48, 1, 128), place_rank(cpu, 1, 48)).duration;
  const double t96 = model.forward(g, tf_config(96, 1, 128), place_rank(cpu, 1, 96)).duration;
  EXPECT_GT(t96, t48);
}

TEST(CpuExecModel, SmallBatchScalesWorseToManyThreads) {
  // Fig 1: the BS=16 curve flattens earlier than BS=512.
  const auto cpu = hw::ri2_skylake().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  auto throughput = [&](int t, int bs) {
    return bs / model.forward(g, tf_config(t, 1, bs), place_rank(cpu, 1, t)).duration;
  };
  const double gain_small = throughput(28, 16) / throughput(8, 16);
  const double gain_large = throughput(28, 512) / throughput(8, 512);
  EXPECT_GT(gain_large, gain_small * 1.1);
}

TEST(CpuExecModel, BackwardProducesGradientEventsInOrder) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const auto bwd = model.backward(g, tf_config(11, 2, 64), place_rank(cpu, 4, 11));
  EXPECT_EQ(bwd.grad_events.size(), g.gradient_tensor_bytes().size());
  double prev = 0.0;
  double total_bytes = 0.0;
  for (const auto& e : bwd.grad_events) {
    EXPECT_GE(e.time, prev);
    EXPECT_LE(e.time, bwd.duration + 1e-9);
    total_bytes += e.bytes;
    prev = e.time;
  }
  EXPECT_DOUBLE_EQ(total_bytes, g.gradient_bytes());
}

TEST(CpuExecModel, HorovodThreadContentionCostsWhenNoSpareCore) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 4, 12);
  auto with_hvd = tf_config(12, 2, 64, /*hvd=*/true);
  auto no_spare = model.forward(g, with_hvd, p).duration;
  auto cfg_spare = tf_config(11, 2, 64, /*hvd=*/true);
  auto spare = model.forward(g, cfg_spare, place_rank(cpu, 4, 11)).duration;
  // 12 threads with a contending Horovod thread should not beat 11+spare by
  // the naive 12/11 ratio; in fact the tuned config wins.
  EXPECT_GT(no_spare, spare * 0.98);
}

TEST(CpuExecModel, InterOpHelpsInceptionMoreThanResNet) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const Placement p = place_rank(cpu, 4, 11);
  auto speedup = [&](dnn::ModelId id) {
    const dnn::Graph g = dnn::build_model(id);
    const double inter1 = model.forward(g, tf_config(11, 1, 64), p).duration;
    const double inter2 = model.forward(g, tf_config(11, 2, 64), p).duration;
    return inter1 / inter2;
  };
  EXPECT_GT(speedup(dnn::ModelId::InceptionV4), speedup(dnn::ModelId::ResNet152));
}

TEST(CpuExecModel, PyTorchEagerIsFarSlowerThanTfMkl) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 1, 48);
  ExecConfig pt = tf_config(48, 1, 32);
  pt.framework = Framework::PyTorch;
  const double pt_t = model.forward(g, pt, p).duration;
  const double tf_t = model.forward(g, tf_config(48, 2, 32), p).duration;
  EXPECT_GT(pt_t, 3.0 * tf_t);
}

TEST(CpuExecModel, RejectsBadConfig) {
  const CpuExecModel model(hw::stampede2().node.cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::AlexNet);
  const Placement p = place_rank(hw::stampede2().node.cpu, 1, 4);
  EXPECT_THROW(model.forward(g, tf_config(0, 1, 4), p), std::invalid_argument);
  EXPECT_THROW(model.forward(g, tf_config(4, 0, 4), p), std::invalid_argument);
  EXPECT_THROW(model.forward(g, tf_config(4, 1, 0), p), std::invalid_argument);
}

TEST(CpuExecModel, OptimizerTimeScalesWithParams) {
  const CpuExecModel model(hw::stampede2().node.cpu);
  const Placement p = place_rank(hw::stampede2().node.cpu, 4, 11);
  const double t50 = model.optimizer_time(dnn::build_model(dnn::ModelId::ResNet50), p);
  const double t152 = model.optimizer_time(dnn::build_model(dnn::ModelId::ResNet152), p);
  EXPECT_NEAR(t152 / t50, 60.19 / 25.56, 0.1);
}


TEST(Calibration, ScopedOverrideRestores) {
  const double original = cpu_calibration().remote_flop_penalty;
  {
    CpuCalibration modified = cpu_calibration();
    modified.remote_flop_penalty = 0.0;
    ScopedCpuCalibration guard(modified);
    EXPECT_EQ(cpu_calibration().remote_flop_penalty, 0.0);
  }
  EXPECT_EQ(cpu_calibration().remote_flop_penalty, original);
}

TEST(Calibration, DisablingNumaRemovesTheKnee) {
  // Without NUMA penalties, 28 threads on Skylake-1 scale much closer to
  // linearly past the socket boundary.
  const auto cpu = hw::ri2_skylake().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  auto rate28_over_14 = [&] {
    const double t14 =
        model.forward(g, tf_config(14, 1, 128), place_rank(cpu, 1, 14)).duration;
    const double t28 =
        model.forward(g, tf_config(28, 1, 128), place_rank(cpu, 1, 28)).duration;
    return t14 / t28;
  };
  const double with_numa = rate28_over_14();
  CpuCalibration no_numa = cpu_calibration();
  no_numa.remote_bw_share = 1.0;
  no_numa.remote_flop_penalty = 0.0;
  ScopedCpuCalibration guard(no_numa);
  const double without_numa = rate28_over_14();
  EXPECT_GT(without_numa, with_numa + 0.1);
}


TEST(CpuExecModel, TraceCoversEveryOpWithinDuration) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::InceptionV3);
  const Placement p = place_rank(cpu, 4, 11);
  const auto fwd = model.forward(g, tf_config(11, 2, 32), p);
  ASSERT_EQ(fwd.trace.size(), static_cast<std::size_t>(g.size()));
  std::vector<bool> seen(static_cast<std::size_t>(g.size()), false);
  for (const auto& iv : fwd.trace) {
    ASSERT_GE(iv.op_id, 0);
    ASSERT_LT(iv.op_id, g.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(iv.op_id)]) << "op traced twice";
    seen[static_cast<std::size_t>(iv.op_id)] = true;
    EXPECT_GE(iv.start, 0.0);
    EXPECT_GT(iv.finish, iv.start);
    EXPECT_LE(iv.finish, fwd.duration + 1e-9);
  }
}

TEST(CpuExecModel, TraceRespectsDataDependencies) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const Placement p = place_rank(cpu, 4, 11);
  const auto fwd = model.forward(g, tf_config(11, 2, 32), p);
  std::vector<double> finish(static_cast<std::size_t>(g.size()), -1.0);
  std::vector<double> start(static_cast<std::size_t>(g.size()), -1.0);
  for (const auto& iv : fwd.trace) {
    finish[static_cast<std::size_t>(iv.op_id)] = iv.finish;
    start[static_cast<std::size_t>(iv.op_id)] = iv.start;
  }
  for (const auto& op : g.ops())
    for (int in : op.inputs)
      EXPECT_GE(start[static_cast<std::size_t>(op.id)] + 1e-12,
                finish[static_cast<std::size_t>(in)])
          << op.name << " started before its input finished";
}

TEST(CpuExecModel, InceptionAchievesHigherConcurrencyThanVgg) {
  const auto cpu = hw::stampede2().node.cpu;
  const CpuExecModel model(cpu);
  const Placement p = place_rank(cpu, 4, 11);
  auto concurrency = [&](dnn::ModelId id) {
    const dnn::Graph g = dnn::build_model(id);
    return average_concurrency(model.forward(g, tf_config(11, 4, 32), p));
  };
  const double vgg = concurrency(dnn::ModelId::Vgg16);         // pure chain
  const double inception = concurrency(dnn::ModelId::InceptionV3);
  EXPECT_NEAR(vgg, 1.0, 0.05);
  EXPECT_GT(inception, 1.3);
}

// ---------------------------------------------------------------------------
// GPU execution model
// ---------------------------------------------------------------------------

TEST(GpuExecModel, GenerationOrderingHolds) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const double k80_t = GpuExecModel(hw::k80()).forward(g, Framework::TensorFlow, 32).duration;
  const double p100_t = GpuExecModel(hw::p100()).forward(g, Framework::TensorFlow, 32).duration;
  const double v100_t = GpuExecModel(hw::v100()).forward(g, Framework::TensorFlow, 32).duration;
  EXPECT_GT(k80_t, p100_t);
  EXPECT_GT(p100_t, v100_t);
}

TEST(GpuExecModel, LargerBatchIsMoreEfficient) {
  const GpuExecModel model(hw::v100());
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  auto per_image = [&](int bs) {
    return model.forward(g, Framework::TensorFlow, bs).duration / bs;
  };
  EXPECT_GT(per_image(4), per_image(64));
  EXPECT_GT(model.sustained_gflops(Framework::TensorFlow, 64),
            model.sustained_gflops(Framework::TensorFlow, 4));
}

TEST(GpuExecModel, PyTorchFasterOnGpu) {
  const GpuExecModel model(hw::v100());
  EXPECT_GT(model.sustained_gflops(Framework::PyTorch, 64),
            model.sustained_gflops(Framework::TensorFlow, 64));
}

TEST(GpuExecModel, BackwardEventsCoverParams) {
  const GpuExecModel model(hw::v100());
  const dnn::Graph g = dnn::build_model(dnn::ModelId::InceptionV3);
  const auto bwd = model.backward(g, Framework::TensorFlow, 32);
  double bytes = 0.0;
  for (const auto& e : bwd.grad_events) bytes += e.bytes;
  EXPECT_DOUBLE_EQ(bytes, g.gradient_bytes());
  EXPECT_THROW(model.forward(g, Framework::TensorFlow, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dnnperf::exec
