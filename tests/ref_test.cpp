#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <mutex>

#include "ref/kernels.hpp"
#include "ref/network.hpp"
#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"

namespace dnnperf::ref {
namespace {

// ---------------------------------------------------------------------------
// Tensor
// ---------------------------------------------------------------------------

TEST(Tensor, ConstructionAndIndexing) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.size(), 120u);
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[119], 7.0f);
  EXPECT_THROW(Tensor({0, 1}), std::invalid_argument);
  EXPECT_THROW(Tensor(std::vector<int>{}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r[11], 11.0f);
  EXPECT_THROW(t.reshaped({5, 5}), std::invalid_argument);
}

TEST(Tensor, MaxAbsDiff) {
  Tensor a({4}), b({4});
  a[2] = 1.0f;
  b[2] = -1.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 2.5f);
  Tensor c({5});
  EXPECT_THROW(max_abs_diff(a, c), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t b, std::size_t e) { sum += e - b; });
    ASSERT_EQ(sum.load(), 100u);
  }
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t b, std::size_t) {
                                   if (b == 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(5, [&](std::size_t b, std::size_t e) { count += static_cast<int>(e - b); });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ReentrantParallelForRunsSerially) {
  // A body dispatching parallel_for on its own pool (e.g. a traced kernel
  // calling another parallel kernel) must not touch the shared dispatch
  // state mid-flight; the nested call runs serially in the calling worker.
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      std::size_t inner_calls = 0;
      pool.parallel_for(32, [&](std::size_t ib, std::size_t ie) {
        ++inner_calls;
        total += ie - ib;
      });
      // Serial execution: the nested call sees the whole range at once.
      EXPECT_EQ(inner_calls, 1u);
    }
  });
  EXPECT_EQ(total.load(), 64u * 32u);

  // A *different* pool inside the body is legitimate nesting and stays
  // parallel (each pool still takes one dispatcher at a time, hence the lock).
  ThreadPool inner_pool(2);
  std::mutex dispatch_mutex;
  std::atomic<std::size_t> cross{0};
  pool.parallel_for(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      std::lock_guard<std::mutex> lock(dispatch_mutex);
      inner_pool.parallel_for(16, [&](std::size_t ib, std::size_t ie) { cross += ie - ib; });
    }
  });
  EXPECT_EQ(cross.load(), 8u * 16u);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for(10, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Finite-difference gradient checks
// ---------------------------------------------------------------------------

/// Numerically checks dL/dx for a scalar loss L = sum(w_out * f(x)) where
/// w_out is a fixed random cotangent. `forward` must be pure in x.
void grad_check(Tensor& x, const Tensor& analytic_dx,
                const std::function<Tensor(const Tensor&)>& forward, const Tensor& cotangent,
                float tol = 2e-2f) {
  const float eps = 1e-2f;
  util::Rng rng(5);
  // Spot-check a sample of coordinates (full sweep is O(n^2)).
  const std::size_t checks = std::min<std::size_t>(x.size(), 24);
  for (std::size_t k = 0; k < checks; ++k) {
    const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(x.size()) - 1));
    const float orig = x[i];
    x[i] = orig + eps;
    const Tensor up = forward(x);
    x[i] = orig - eps;
    const Tensor down = forward(x);
    x[i] = orig;
    double loss_up = 0.0, loss_down = 0.0;
    for (std::size_t j = 0; j < up.size(); ++j) {
      loss_up += up[j] * cotangent[j];
      loss_down += down[j] * cotangent[j];
    }
    const double numeric = (loss_up - loss_down) / (2.0 * eps);
    EXPECT_NEAR(analytic_dx[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "coordinate " << i;
  }
}

TEST(GradCheck, Conv2dInputWeightBias) {
  ThreadPool pool(2);
  util::Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 6, 6}, rng);
  Tensor w = Tensor::randn({4, 3, 3, 3}, rng, 0.5f);
  Tensor b = Tensor::randn({4}, rng, 0.1f);
  const ConvSpec spec{1, 1};

  const Tensor y = conv2d_forward(x, w, b, spec, pool);
  Tensor cot = Tensor::randn(y.shape(), rng);
  Tensor dx, dw, db;
  conv2d_backward(x, w, cot, spec, dx, dw, db, pool);

  grad_check(x, dx, [&](const Tensor& xx) { return conv2d_forward(xx, w, b, spec, pool); }, cot);
  grad_check(w, dw, [&](const Tensor& ww) { return conv2d_forward(x, ww, b, spec, pool); }, cot);
  grad_check(b, db, [&](const Tensor& bb) { return conv2d_forward(x, w, bb, spec, pool); }, cot);
}

TEST(GradCheck, Conv2dStrided) {
  ThreadPool pool(2);
  util::Rng rng(2);
  Tensor x = Tensor::randn({1, 2, 7, 7}, rng);
  Tensor w = Tensor::randn({3, 2, 3, 3}, rng, 0.5f);
  Tensor b = Tensor::zeros({3});
  const ConvSpec spec{2, 0};
  const Tensor y = conv2d_forward(x, w, b, spec, pool);
  EXPECT_EQ(y.dim(2), 3);
  Tensor cot = Tensor::randn(y.shape(), rng);
  Tensor dx, dw, db;
  conv2d_backward(x, w, cot, spec, dx, dw, db, pool);
  grad_check(x, dx, [&](const Tensor& xx) { return conv2d_forward(xx, w, b, spec, pool); }, cot);
  grad_check(w, dw, [&](const Tensor& ww) { return conv2d_forward(x, ww, b, spec, pool); }, cot);
}

TEST(GradCheck, Dense) {
  ThreadPool pool(2);
  util::Rng rng(3);
  Tensor x = Tensor::randn({4, 6}, rng);
  Tensor w = Tensor::randn({6, 5}, rng, 0.5f);
  Tensor b = Tensor::randn({5}, rng, 0.1f);
  const Tensor y = dense_forward(x, w, b, pool);
  Tensor cot = Tensor::randn(y.shape(), rng);
  Tensor dx, dw, db;
  dense_backward(x, w, cot, dx, dw, db, pool);
  grad_check(x, dx, [&](const Tensor& xx) { return dense_forward(xx, w, b, pool); }, cot);
  grad_check(w, dw, [&](const Tensor& ww) { return dense_forward(x, ww, b, pool); }, cot);
  grad_check(b, db, [&](const Tensor& bb) { return dense_forward(x, w, bb, pool); }, cot);
}

TEST(GradCheck, ReLU) {
  ThreadPool pool(2);
  util::Rng rng(4);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  // Keep values away from the kink so finite differences are clean.
  for (std::size_t i = 0; i < x.size(); ++i)
    if (std::fabs(x[i]) < 0.05f) x[i] = 0.2f;
  const Tensor y = relu_forward(x, pool);
  Tensor cot = Tensor::randn(y.shape(), rng);
  const Tensor dx = relu_backward(x, cot, pool);
  grad_check(x, dx, [&](const Tensor& xx) { return relu_forward(xx, pool); }, cot);
}

TEST(GradCheck, MaxPool) {
  ThreadPool pool(2);
  util::Rng rng(6);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  Tensor argmax;
  const Tensor y = maxpool_forward(x, 2, 2, argmax, pool);
  EXPECT_EQ(y.dim(2), 3);
  Tensor cot = Tensor::randn(y.shape(), rng);
  const Tensor dx = maxpool_backward(x, cot, argmax, pool);
  grad_check(x, dx,
             [&](const Tensor& xx) {
               Tensor am;
               return maxpool_forward(xx, 2, 2, am, pool);
             },
             cot);
}

TEST(GradCheck, GlobalAvgPool) {
  util::Rng rng(7);
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor y = global_avg_pool_forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 3}));
  Tensor cot = Tensor::randn(y.shape(), rng);
  const Tensor dx = global_avg_pool_backward(x, cot);
  grad_check(x, dx, [&](const Tensor& xx) { return global_avg_pool_forward(xx); }, cot);
}

TEST(GradCheck, BatchNorm) {
  util::Rng rng(8);
  Tensor x = Tensor::randn({3, 2, 4, 4}, rng);
  Tensor gamma = Tensor::randn({2}, rng, 0.2f);
  for (std::size_t i = 0; i < gamma.size(); ++i) gamma[i] += 1.0f;
  Tensor beta = Tensor::randn({2}, rng, 0.2f);
  const float eps = 1e-5f;

  BatchNormCache cache;
  const Tensor y = batchnorm_forward(x, gamma, beta, eps, cache);
  Tensor cot = Tensor::randn(y.shape(), rng);
  Tensor dx, dgamma, dbeta;
  batchnorm_backward(cot, cache, gamma, dx, dgamma, dbeta);

  grad_check(x, dx,
             [&](const Tensor& xx) {
               BatchNormCache c;
               return batchnorm_forward(xx, gamma, beta, eps, c);
             },
             cot, 5e-2f);
  grad_check(gamma, dgamma,
             [&](const Tensor& gg) {
               BatchNormCache c;
               return batchnorm_forward(x, gg, beta, eps, c);
             },
             cot, 5e-2f);
}

TEST(GradCheck, SoftmaxXent) {
  util::Rng rng(9);
  Tensor logits = Tensor::randn({4, 5}, rng);
  const std::vector<int> labels{1, 0, 4, 2};
  Tensor dlogits;
  const float loss = softmax_xent(logits, labels, dlogits);
  EXPECT_GT(loss, 0.0f);

  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor tmp;
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float up = softmax_xent(logits, labels, tmp);
    logits[i] = orig - eps;
    const float down = softmax_xent(logits, labels, tmp);
    logits[i] = orig;
    EXPECT_NEAR(dlogits[i], (up - down) / (2 * eps), 1e-3f);
  }
  EXPECT_THROW(softmax_xent(logits, {1, 2}, dlogits), std::invalid_argument);
  EXPECT_THROW(softmax_xent(logits, {9, 0, 0, 0}, dlogits), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Kernel properties
// ---------------------------------------------------------------------------

TEST(Kernels, ParallelConvMatchesSerial) {
  util::Rng rng(10);
  Tensor x = Tensor::randn({3, 4, 9, 9}, rng);
  Tensor w = Tensor::randn({8, 4, 3, 3}, rng, 0.4f);
  Tensor b = Tensor::randn({8}, rng, 0.1f);
  ThreadPool serial(1), parallel(4);
  const Tensor y1 = conv2d_forward(x, w, b, ConvSpec{1, 1}, serial);
  const Tensor y4 = conv2d_forward(x, w, b, ConvSpec{1, 1}, parallel);
  EXPECT_LT(max_abs_diff(y1, y4), 1e-6f);
}

TEST(Kernels, ConvShapeChecks) {
  ThreadPool pool(1);
  Tensor x({1, 3, 8, 8});
  Tensor w({4, 2, 3, 3});  // channel mismatch
  Tensor b({4});
  EXPECT_THROW(conv2d_forward(x, w, b, ConvSpec{1, 1}, pool), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Network / SGD
// ---------------------------------------------------------------------------

TEST(Network, TrainingReducesLoss) {
  ThreadPool pool(2);
  util::Rng rng(11);
  Network net = make_tiny_cnn(3, 8, 4, pool, rng);
  SgdOptimizer sgd(0.1f);
  util::Rng data_rng(12);
  const auto batch = synthetic_batch(8, 3, 8, 4, data_rng);

  const float first = net.train_step(batch.images, batch.labels);
  sgd.step(net.params());
  float last = first;
  for (int i = 0; i < 15; ++i) {
    last = net.train_step(batch.images, batch.labels);
    sgd.step(net.params());
  }
  EXPECT_LT(last, first * 0.8f) << "loss did not decrease on a fixed batch";
}

TEST(Network, ParamCountsAndNames) {
  ThreadPool pool(1);
  util::Rng rng(13);
  Network net = make_tiny_cnn(3, 8, 4, pool, rng);
  const auto params = net.params();
  // conv1(w,b) bn1(g,b) conv2(w,b) bn2(g,b) fc(w,b) = 10 tensors.
  EXPECT_EQ(params.size(), 10u);
  EXPECT_GT(net.num_parameters(), 1000u);
  Network lean = make_tiny_cnn(3, 8, 4, pool, rng, /*batch_norm=*/false);
  EXPECT_EQ(lean.params().size(), 6u);
}

}  // namespace
}  // namespace dnnperf::ref
