#include <gtest/gtest.h>

#include "core/advisor.hpp"
#include "core/experiment.hpp"
#include "core/figures.hpp"
#include "core/presets.hpp"
#include "hw/platforms.hpp"

namespace dnnperf::core {
namespace {

// ---------------------------------------------------------------------------
// Presets encode the paper's Section IX rules
// ---------------------------------------------------------------------------

TEST(Presets, TfBestPpnFollowsPaper) {
  EXPECT_EQ(tf_best_ppn(hw::skylake1()), 2);   // 28 cores
  EXPECT_EQ(tf_best_ppn(hw::broadwell()), 2);  // 28 cores
  EXPECT_EQ(tf_best_ppn(hw::skylake2()), 4);   // 40 cores
  EXPECT_EQ(tf_best_ppn(hw::skylake3()), 4);   // 48 cores
  EXPECT_EQ(tf_best_ppn(hw::epyc()), 16);
}

TEST(Presets, PytorchBestPpnFollowsPaper) {
  EXPECT_EQ(pytorch_best_ppn(hw::skylake3()), 48);
  EXPECT_EQ(pytorch_best_ppn(hw::epyc()), 32);
}

TEST(Presets, BatchRulesFollowPaper) {
  EXPECT_EQ(pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 1).batch_per_rank, 16);
  EXPECT_EQ(pytorch_best(hw::stampede2(), dnn::ModelId::ResNet152, 1).batch_per_rank, 8);
  EXPECT_EQ(tf_best(hw::amd_cluster(), dnn::ModelId::ResNet50, 1).intra_threads, 5);
  EXPECT_EQ(tf_best(hw::amd_cluster(), dnn::ModelId::ResNet50, 1).inter_threads, 2);
}

// ---------------------------------------------------------------------------
// Experiment protocol
// ---------------------------------------------------------------------------

TEST(Experiment, AveragesOverRepeats) {
  Experiment exp(/*repeats=*/5, /*noise_cv=*/0.01, /*seed=*/7);
  auto cfg = tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 1);
  const auto m = exp.measure(cfg);
  EXPECT_NEAR(m.images_per_sec, m.last.images_per_sec, 0.05 * m.last.images_per_sec);
  EXPECT_GT(m.stddev, 0.0);

  Experiment noiseless(3, 0.0, 7);
  const auto exact = noiseless.measure(cfg);
  EXPECT_DOUBLE_EQ(exact.images_per_sec, exact.last.images_per_sec);
  EXPECT_EQ(exact.stddev, 0.0);
  EXPECT_THROW(Experiment(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Figure anchors vs the paper's highlighted numbers
// ---------------------------------------------------------------------------

TEST(Figures, Fig06MpOverSpInPaperBand) {
  const auto fig = fig06_sp_vs_mp();
  // Paper: up to 1.35x (RN152) and 1.47x (Inception-v4).
  EXPECT_GT(fig.anchors.at("mp_over_sp_rn152"), 1.2);
  EXPECT_LT(fig.anchors.at("mp_over_sp_rn152"), 1.7);
  EXPECT_GT(fig.anchors.at("mp_over_sp_incv4"), 1.2);
  EXPECT_LT(fig.anchors.at("mp_over_sp_incv4"), 1.7);
}

TEST(Figures, Fig09AverageSpeedupNearPaper) {
  const auto fig = fig09_mn_skylake2();
  EXPECT_NEAR(fig.anchors.at("avg_speedup_16_nodes"), 15.6, 0.8);
}

TEST(Figures, Fig12PytorchSpAnchor) {
  const auto fig = fig12_pytorch_skylake3();
  // Paper Section VI-D: 2.1 img/s for single-process PyTorch ResNet-50.
  EXPECT_NEAR(fig.anchors.at("pt_sp_rn50_img_per_sec"), 2.1, 0.7);
  // MP at 48 ppn recovers more than an order of magnitude on one node.
  EXPECT_GT(fig.anchors.at("n1_ResNet-50"),
            10.0 * fig.anchors.at("pt_sp_rn50_img_per_sec"));
}

TEST(Figures, Fig13EpycAnchors) {
  const auto fig = fig13_epyc_tensorflow();
  EXPECT_NEAR(fig.anchors.at("rn152_speedup_8_nodes"), 7.8, 0.4);
  EXPECT_NEAR(fig.anchors.at("skylake3_over_epyc_rn50"), 4.5, 1.0);
}

TEST(Figures, Fig14EpycPytorchAnchors) {
  const auto fig = fig14_epyc_pytorch();
  EXPECT_NEAR(fig.anchors.at("rn50_speedup_8_nodes"), 7.98, 0.4);
  EXPECT_NEAR(fig.anchors.at("pt_over_tf_rn152_8_nodes"), 1.2, 0.25);
  EXPECT_NEAR(fig.anchors.at("skylake3_over_epyc_pt_rn101"), 1.5, 0.35);
}

TEST(Figures, Fig15GpuCpuAnchors) {
  const auto fig = fig15_gpu_cpu_tensorflow();
  // Paper: Skylake-3 up to 2.35x K80 (Inception-v4); V100 up to 3.32x
  // Skylake-3 (ResNet-101).
  EXPECT_NEAR(fig.anchors.at("skx_over_k80_Inception-v4"), 2.35, 0.6);
  EXPECT_NEAR(fig.anchors.at("v100_over_skx_ResNet-101"), 3.32, 0.7);
  // Ordering: V100 > P100 > K80 on every model.
  for (auto m : dnn::paper_models()) {
    const std::string name = dnn::to_string(m);
    EXPECT_GT(fig.anchors.at("p100_over_k80_" + name), 1.0) << name;
    EXPECT_GT(fig.anchors.at("v100_over_skx_" + name) * 2.35, 1.0) << name;
  }
}

TEST(Figures, Fig16PytorchBeatsTensorFlowOnGpus) {
  const auto fig = fig16_pt_vs_tf_gpu();
  EXPECT_NEAR(fig.anchors.at("pt_over_tf_4gpu_ResNet-152"), 1.12, 0.12);
  for (auto m : {dnn::ModelId::ResNet50, dnn::ModelId::ResNet101, dnn::ModelId::ResNet152}) {
    const std::string name = dnn::to_string(m);
    EXPECT_GT(fig.anchors.at("pt_1gpu_" + name), fig.anchors.at("tf_1gpu_" + name)) << name;
  }
}

TEST(Figures, Fig17LargeScaleAnchors) {
  const auto fig = fig17_mn_skylake3_128();
  EXPECT_NEAR(fig.anchors.at("rn152_speedup_128_nodes"), 125.0, 5.0);
  EXPECT_NEAR(fig.anchors.at("rn152_img_per_sec_128_nodes"), 5001.0, 800.0);
}

TEST(Figures, Fig18TensorFlowCycleTimeInsensitive) {
  const auto fig = fig18_hvd_profiling_tf();
  // Paper: at most ~1.04x from 90 ms cycle time; engine allreduce count
  // drops steeply with cycle time.
  for (auto m : {"ResNet-50", "ResNet-101", "ResNet-152"}) {
    EXPECT_GT(fig.anchors.at(std::string("perf_gain_") + m), 0.97) << m;
    EXPECT_LT(fig.anchors.at(std::string("perf_gain_") + m), 1.10) << m;
    EXPECT_GT(fig.anchors.at(std::string("ops_reduction_") + m), 10.0) << m;
  }
}

TEST(Figures, Fig19PytorchNeedsCycleTimeTuning) {
  const auto fig = fig19_hvd_profiling_pt();
  // Paper: up to 1.25x for ResNet-50 and ~199x fewer engine allreduces.
  EXPECT_NEAR(fig.anchors.at("perf_gain_ResNet-50"), 1.25, 0.15);
  EXPECT_GT(fig.anchors.at("ops_reduction_ResNet-50"), 50.0);
  EXPECT_LT(fig.anchors.at("ops_reduction_ResNet-50"), 500.0);
}

TEST(Figures, RegistryCoversAllFigures) {
  const auto ids = all_figure_ids();
  EXPECT_EQ(ids.size(), 20u);  // table1 + fig01..fig19
  EXPECT_THROW(run_figure("fig99"), std::out_of_range);
  const auto t1 = run_figure("table1");
  EXPECT_EQ(t1.tables.at(0).rows(), 5u);
  EXPECT_FALSE(render(t1).empty());
}

// ---------------------------------------------------------------------------
// Advisor rediscovers the paper's rules by search
// ---------------------------------------------------------------------------

TEST(Advisor, FindsMultiProcessOnSkylake3) {
  AdvisorOptions opts;
  opts.batch_candidates = {32, 64};
  opts.ppn_candidates = {1, 2, 4, 8};
  const auto rec = advise(hw::stampede2(), dnn::ModelId::ResNet152,
                          exec::Framework::TensorFlow, opts);
  // The search must reject SP and land on 4 or 8 ppn (paper: 4).
  EXPECT_GE(rec.best.ppn, 4);
  EXPECT_GT(rec.images_per_sec, 0.0);
  EXPECT_GT(rec.search_table.rows(), 10u);
}

TEST(Advisor, PytorchWantsManyProcesses) {
  AdvisorOptions opts;
  opts.batch_candidates = {16};
  opts.ppn_candidates = {1, 4, 16, 48};
  const auto rec =
      advise(hw::stampede2(), dnn::ModelId::ResNet50, exec::Framework::PyTorch, opts);
  // Paper: ppn == cores (48) for PyTorch. In the model, 16 ppn (3 cores per
  // rank, at PyTorch's effective-thread ceiling) is nearly equivalent, so the
  // search may land on either — but never on few-process configs.
  EXPECT_GE(rec.best.ppn, 16);
}

TEST(Advisor, EpycPrefersNumaAlignedPpn) {
  AdvisorOptions opts;
  opts.batch_candidates = {32};
  opts.ppn_candidates = {1, 2, 8, 16, 32};
  const auto rec =
      advise(hw::amd_cluster(), dnn::ModelId::ResNet50, exec::Framework::TensorFlow, opts);
  EXPECT_GE(rec.best.ppn, 8);  // at least one rank per NUMA domain
}

}  // namespace
}  // namespace dnnperf::core
