// Static-analysis subsystem tests: golden diagnostics on deliberately broken
// fixtures (every family must fire its exact code), clean-bill checks on
// everything the repo ships, the pass registry contract, the diagnostic
// renderers, and the core::Experiment lint gate.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/net_passes.hpp"
#include "analysis/registry.hpp"
#include "core/experiment.hpp"
#include "core/presets.hpp"
#include "dnn/models.hpp"
#include "hw/platforms.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "util/diag.hpp"

namespace dnnperf::analysis {
namespace {

using util::Severity;

dnn::Op make_op(int id, std::string name, dnn::OpKind kind, std::vector<int> inputs,
                dnn::Shape out) {
  dnn::Op op;
  op.id = id;
  op.name = std::move(name);
  op.kind = kind;
  op.inputs = std::move(inputs);
  op.out = out;
  op.output_bytes = out.elements() * 4.0;  // consistent unless a test breaks it
  return op;
}

// ---------------------------------------------------------------------------
// Graph passes (Gxxx)
// ---------------------------------------------------------------------------

TEST(GraphPasses, ShapeMismatchFiresG001) {
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 224, 224}),
                 make_op(1, "relu", dnn::OpKind::ReLU, {0}, {3, 112, 112}),
                 make_op(2, "softmax", dnn::OpKind::Softmax, {1}, {3, 112, 112})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G001"));
  EXPECT_TRUE(diags.has_errors());
  EXPECT_FALSE(diags.has_code("G002"));
}

TEST(GraphPasses, ConcatChannelMismatchFiresG001) {
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "input", dnn::OpKind::Input, {}, {8, 14, 14}),
                 make_op(1, "a", dnn::OpKind::ReLU, {0}, {8, 14, 14}),
                 make_op(2, "b", dnn::OpKind::ReLU, {0}, {8, 14, 14}),
                 // 8 + 8 input channels but the output claims 24.
                 make_op(3, "cat", dnn::OpKind::Concat, {1, 2}, {24, 14, 14})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G001"));
}

TEST(GraphPasses, FirstOpNotInputFiresG002) {
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "relu", dnn::OpKind::ReLU, {}, {3, 8, 8})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G002"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(GraphPasses, EmptyGraphFiresG002) {
  const auto diags = lint_graph(dnn::Graph::from_ops("empty", {}));
  EXPECT_TRUE(diags.has_code("G002"));
}

TEST(GraphPasses, NonTopologicalEdgeFiresG002AndGatesShapeChecks) {
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}),
                 // Consumes itself: invalid id, and the shape is also wrong —
                 // but G001 must stay silent because the ids cannot be trusted.
                 make_op(1, "relu", dnn::OpKind::ReLU, {1}, {5, 9, 9})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G002"));
  EXPECT_FALSE(diags.has_code("G001"));
}

TEST(GraphPasses, DeadLayerFiresG003) {
  auto g = dnn::Graph::from_ops(
      "dead-branch", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}),
                      make_op(1, "dead", dnn::OpKind::ReLU, {0}, {3, 8, 8}),
                      make_op(2, "softmax", dnn::OpKind::Softmax, {0}, {3, 8, 8})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G003"));
  EXPECT_FALSE(diags.has_errors()) << util::render_text(diags);
}

TEST(GraphPasses, UnreachableOpFiresG004) {
  auto g = dnn::Graph::from_ops(
      "island", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}),
                 make_op(1, "input2", dnn::OpKind::Input, {}, {3, 8, 8}),
                 make_op(2, "orphan", dnn::OpKind::ReLU, {1}, {3, 8, 8})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G004"));
  EXPECT_TRUE(diags.has_code("G003"));  // the secondary Input
}

TEST(GraphPasses, ParamsOnReluFiresG005) {
  auto relu = make_op(1, "relu", dnn::OpKind::ReLU, {0}, {3, 8, 8});
  relu.params = 100.0;
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}), relu});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G005"));
}

TEST(GraphPasses, OutputBytesMismatchFiresG005) {
  auto relu = make_op(1, "relu", dnn::OpKind::ReLU, {0}, {3, 8, 8});
  relu.output_bytes = 17.0;  // 3*8*8*4 = 768
  auto g = dnn::Graph::from_ops(
      "broken", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}), relu});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G005"));
}

TEST(GraphPasses, DuplicateNamesFireG007) {
  auto g = dnn::Graph::from_ops(
      "dup", {make_op(0, "input", dnn::OpKind::Input, {}, {3, 8, 8}),
              make_op(1, "layer", dnn::OpKind::ReLU, {0}, {3, 8, 8}),
              make_op(2, "layer", dnn::OpKind::Softmax, {1}, {3, 8, 8})});
  const auto diags = lint_graph(g);
  EXPECT_TRUE(diags.has_code("G007"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(GraphPasses, EveryShippedModelLintsClean) {
  for (dnn::ModelId id : dnn::all_models()) {
    const auto diags = lint_graph(dnn::build_model(id));
    EXPECT_EQ(diags.count(Severity::Error), 0u)
        << dnn::to_string(id) << "\n" << util::render_text(diags);
    EXPECT_EQ(diags.count(Severity::Warn), 0u)
        << dnn::to_string(id) << "\n" << util::render_text(diags);
  }
}

// ---------------------------------------------------------------------------
// Platform passes (Pxxx)
// ---------------------------------------------------------------------------

TEST(HwPasses, NumaCoreMismatchFiresP002) {
  hw::CpuModel cpu = hw::skylake1();  // 14 cores per socket
  cpu.numa_domains_per_socket = 3;
  const auto diags = lint_cpu(cpu);
  EXPECT_TRUE(diags.has_code("P002"));
}

TEST(HwPasses, BogusSmtDepthFiresP003) {
  hw::CpuModel cpu = hw::stampede2().node.cpu;
  cpu.threads_per_core = 3;
  EXPECT_TRUE(lint_cpu(cpu).has_code("P003"));
}

TEST(HwPasses, SmtFractionWithoutSmtFiresP004) {
  hw::CpuModel cpu = hw::skylake1();  // SMT off
  cpu.smt_speedup_fraction = 0.3;
  EXPECT_TRUE(lint_cpu(cpu).has_code("P004"));
}

TEST(HwPasses, MegahertzClockFiresP005Warn) {
  hw::CpuModel cpu = hw::skylake1();
  cpu.clock_ghz = 2600.0;  // classic MHz-in-a-GHz-field unit error
  const auto diags = lint_cpu(cpu);
  EXPECT_TRUE(diags.has_code("P005"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(HwPasses, NonPositiveSocketsFiresP001) {
  hw::CpuModel cpu = hw::broadwell();
  cpu.sockets = 0;
  EXPECT_TRUE(lint_cpu(cpu).has_code("P001"));
}

TEST(HwPasses, EmptyClusterFiresP008) {
  hw::ClusterModel cluster = hw::ri2_skylake();
  cluster.max_nodes = 0;
  EXPECT_TRUE(lint_cluster(cluster).has_code("P008"));
}

TEST(HwPasses, EveryShippedPlatformLintsClean) {
  for (const auto& cpu : hw::all_cpus()) {
    const auto diags = lint_cpu(cpu);
    EXPECT_TRUE(diags.empty()) << cpu.label << "\n" << util::render_text(diags);
  }
  for (const auto& cluster : hw::all_clusters()) {
    const auto diags = lint_cluster(cluster);
    EXPECT_EQ(diags.count(Severity::Error), 0u)
        << cluster.name << "\n" << util::render_text(diags);
    EXPECT_EQ(diags.count(Severity::Warn), 0u)
        << cluster.name << "\n" << util::render_text(diags);
  }
}

// ---------------------------------------------------------------------------
// Network passes (Nxxx)
// ---------------------------------------------------------------------------

TEST(NetPasses, NegativeBandwidthFiresN001) {
  // net::Topology validates eagerly, so the broken link goes through the
  // pass directly — the path a deserialized/external topology would take.
  net::LinkParams link;
  link.bandwidth_gbps = -1.0;
  util::Diagnostics diags;
  run_link_passes(link, "fixture", "intra_node", diags);
  EXPECT_TRUE(diags.has_code("N001"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(NetPasses, LatencyInversionFiresN003) {
  net::LinkParams intra;  // defaults are sane
  intra.latency_s = 5e-4;  // far above any fabric's ~1 us
  const net::Topology topo(2, 2, hw::FabricKind::InfiniBandEDR, intra);
  const auto diags = lint_topology(topo, "fixture");
  EXPECT_TRUE(diags.has_code("N003"));
  EXPECT_FALSE(diags.has_errors()) << util::render_text(diags);
}

TEST(NetPasses, DefaultTopologyHasNoErrorsOrWarnings) {
  const net::Topology topo(4, 4, hw::FabricKind::OmniPath);
  const auto diags = lint_topology(topo, "Stampede2 4x4");
  EXPECT_EQ(diags.count(Severity::Error), 0u) << util::render_text(diags);
  EXPECT_EQ(diags.count(Severity::Warn), 0u) << util::render_text(diags);
}

// ---------------------------------------------------------------------------
// Policy passes (Hxxx)
// ---------------------------------------------------------------------------

TEST(PolicyPasses, NonPositiveCycleTimeFiresH001) {
  hvd::FusionPolicy policy;
  policy.cycle_time_s = -1.0;
  EXPECT_TRUE(lint_policy(policy, nullptr, nullptr, "fixture").has_code("H001"));
}

TEST(PolicyPasses, NonPositiveThresholdFiresH002) {
  hvd::FusionPolicy policy;
  policy.fusion_threshold_bytes = 0.0;
  EXPECT_TRUE(lint_policy(policy, nullptr, nullptr, "fixture").has_code("H002"));
}

TEST(PolicyPasses, Vgg16LargestTensorExceedsDefaultThresholdFiresH004) {
  // VGG-16's fc6 gradient is ~411 MB — far above Horovod's 64 MiB default.
  const dnn::Graph graph = dnn::build_model(dnn::ModelId::Vgg16);
  const net::LinkParams link = net::fabric_params(hw::FabricKind::InfiniBandEDR);
  const hvd::FusionPolicy policy;
  const auto diags = lint_policy(policy, &graph, &link, "fixture");
  EXPECT_TRUE(diags.has_code("H004"));
  EXPECT_FALSE(diags.has_errors());
}

TEST(PolicyPasses, ResNet50DefaultPolicyHasNoFindings) {
  const dnn::Graph graph = dnn::build_model(dnn::ModelId::ResNet50);
  const net::LinkParams link = net::fabric_params(hw::FabricKind::InfiniBandEDR);
  const auto diags = lint_policy(hvd::FusionPolicy{}, &graph, &link, "fixture");
  EXPECT_TRUE(diags.empty()) << util::render_text(diags);
}

TEST(PolicyPasses, AbsurdThresholdFiresH005UnitErrorAdvice) {
  hvd::FusionPolicy policy;
  policy.fusion_threshold_bytes = 1e12;  // 1 TB: a bytes-vs-MiB confusion
  const dnn::Graph graph = dnn::build_model(dnn::ModelId::ResNet50);
  EXPECT_TRUE(lint_policy(policy, &graph, nullptr, "fixture").has_code("H005"));
}

TEST(PolicyPasses, SubRttCycleTimeFiresH003) {
  hvd::FusionPolicy policy;
  policy.cycle_time_s = 1e-7;  // wakes up faster than one fabric round trip
  const net::LinkParams link = net::fabric_params(hw::FabricKind::InfiniBandEDR);
  EXPECT_TRUE(lint_policy(policy, nullptr, &link, "fixture").has_code("H003"));
}

// ---------------------------------------------------------------------------
// Schedule passes (Sxxx) via lint_config
// ---------------------------------------------------------------------------

TEST(SchedulePasses, PpnBeyondCoresFiresS003) {
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 1);
  cfg.ppn = 64;  // Skylake-1 nodes have 28 cores
  const auto diags = lint_config(cfg);
  EXPECT_TRUE(diags.has_code("S003"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(SchedulePasses, NodesBeyondClusterFiresS002) {
  const auto cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 100);
  EXPECT_TRUE(lint_config(cfg).has_code("S002"));
}

TEST(SchedulePasses, MultiRankWithoutHorovodFiresS006) {
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 2);
  cfg.use_horovod = false;
  EXPECT_TRUE(lint_config(cfg).has_code("S006"));
}

TEST(SchedulePasses, GpuRunOnCpuClusterFiresS007) {
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 1);
  cfg.device = train::DeviceKind::Gpu;
  EXPECT_TRUE(lint_config(cfg).has_code("S007"));
}

TEST(SchedulePasses, ThreadOversubscriptionFiresS004) {
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 1);
  cfg.ppn = 4;
  cfg.intra_threads = 28;  // 4 x 28 = 112 threads on a 28-thread node
  const auto diags = lint_config(cfg);
  EXPECT_TRUE(diags.has_code("S004"));
  EXPECT_TRUE(diags.has_errors());
}

TEST(SchedulePasses, RaggedBatchFiresS011Advice) {
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 1);
  cfg.batch_per_rank = 30;
  const auto diags = lint_config(cfg);
  EXPECT_TRUE(diags.has_code("S011"));
  EXPECT_FALSE(diags.has_errors()) << util::render_text(diags);
}

TEST(SchedulePasses, OversizedFootprintFiresS008Warn) {
  // ResNet-152 at batch 64, ppn 32 on a 256 GB node does not fit even under
  // the tensor-lifetime plan (batch 32 squeaks in at ~7.3 of the 8 GiB
  // per-rank budget) — the finding that drove pytorch_best down to 16.
  train::TrainConfig cfg =
      core::pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 2);
  cfg.batch_per_rank = 64;
  const auto diags = lint_config(cfg);
  EXPECT_TRUE(diags.has_code("S008"));
  EXPECT_FALSE(diags.has_errors()) << util::render_text(diags);
}

TEST(SchedulePasses, FixedEpycResNet152PresetNoLongerWarns) {
  const auto cfg = core::pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 2);
  EXPECT_EQ(cfg.batch_per_rank, 16);
  EXPECT_FALSE(lint_config(cfg).has_code("S008"));
}

TEST(SchedulePasses, EveryShippedPresetLintsWithoutErrors) {
  for (const auto& cluster : hw::all_clusters()) {
    if (cluster.node.has_gpu()) {
      const auto cfg = core::gpu_config(cluster, dnn::ModelId::ResNet50,
                                        exec::Framework::TensorFlow, 1,
                                        cluster.node.gpu->devices_per_node, 32);
      const auto diags = lint_config(cfg);
      EXPECT_EQ(diags.count(Severity::Error), 0u)
          << config_label(cfg) << "\n" << util::render_text(diags);
      continue;
    }
    const int nodes = std::min(2, cluster.max_nodes);
    for (dnn::ModelId model : dnn::paper_models()) {
      for (const auto& cfg : {core::tf_best(cluster, model, nodes),
                              core::pytorch_best(cluster, model, nodes),
                              core::sp_baseline(cluster, model, 32)}) {
        const auto diags = lint_config(cfg);
        EXPECT_EQ(diags.count(Severity::Error), 0u)
            << config_label(cfg) << "\n" << util::render_text(diags);
      }
    }
  }
}

TEST(SchedulePasses, ConfigLabelNamesModelClusterAndSchedule) {
  const auto cfg = core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 8);
  EXPECT_EQ(config_label(cfg), "ResNet-50@Stampede2 n8xppn4 (TensorFlow)");
}

// ---------------------------------------------------------------------------
// core::Experiment lint gate
// ---------------------------------------------------------------------------

TEST(ExperimentGate, RefusesErrorLevelConfig) {
  core::Experiment exp(1, 0.0);
  train::TrainConfig cfg = core::tf_best(hw::ri2_skylake(), dnn::ModelId::ResNet50, 1);
  cfg.ppn = 64;  // S003: more ranks than cores
  EXPECT_TRUE(exp.lint_enabled());
  EXPECT_THROW(exp.measure(cfg), std::invalid_argument);
}

TEST(ExperimentGate, WarnLevelConfigStillRuns) {
  core::Experiment exp(1, 0.0);
  train::TrainConfig cfg =
      core::pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 1);
  cfg.batch_per_rank = 32;  // forces the S008 memory warning
  const auto m = exp.measure(cfg);  // warns do not gate
  EXPECT_GT(m.images_per_sec, 0.0);
}

TEST(ExperimentGate, SetLintDisablesTheGate) {
  core::Experiment exp(1, 0.0);
  exp.set_lint(false);
  EXPECT_FALSE(exp.lint_enabled());
}

// ---------------------------------------------------------------------------
// Pass registry + renderers
// ---------------------------------------------------------------------------

TEST(Registry, CodesAreUniqueSortedAndDocumented) {
  // Registry order is by family (G, P, N, H, S), numbers ascending within
  // each; codes are globally unique.
  const auto& passes = pass_registry();
  ASSERT_FALSE(passes.empty());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < passes.size(); ++i) {
    EXPECT_EQ(passes[i].code.size(), 4u) << passes[i].code;
    EXPECT_FALSE(passes[i].family.empty()) << passes[i].code;
    EXPECT_FALSE(passes[i].summary.empty()) << passes[i].code;
    EXPECT_TRUE(seen.insert(passes[i].code).second)
        << "duplicate code " << passes[i].code;
    if (i > 0 && passes[i - 1].code.front() == passes[i].code.front()) {
      EXPECT_LT(passes[i - 1].code, passes[i].code);
    }
  }
}

TEST(Registry, LookupRoundTripsAndRejectsUnknownCodes) {
  EXPECT_EQ(pass_info("G001").family, "graph");
  EXPECT_EQ(pass_info("S003").severity, Severity::Error);
  EXPECT_THROW(pass_info("Z999"), std::out_of_range);
}

TEST(Registry, EveryEmittedCodeIsRegistered) {
  // Merge diagnostics from a spread of broken fixtures and the shipped
  // presets; every code that reaches a user must have a registry entry.
  util::Diagnostics all;
  all.merge(lint_graph(dnn::Graph::from_ops("empty", {})));
  hw::CpuModel cpu = hw::skylake1();
  cpu.numa_domains_per_socket = 3;
  cpu.clock_ghz = 2600.0;
  all.merge(lint_cpu(cpu));
  net::LinkParams intra;
  intra.latency_s = 5e-4;
  all.merge(lint_topology(net::Topology(2, 2, hw::FabricKind::InfiniBandEDR, intra), "f"));
  hvd::FusionPolicy policy;
  policy.cycle_time_s = -1.0;
  policy.fusion_threshold_bytes = -1.0;
  all.merge(lint_policy(policy, nullptr, nullptr, "f"));
  all.merge(lint_config(core::pytorch_best(hw::amd_cluster(), dnn::ModelId::ResNet152, 2)));
  ASSERT_FALSE(all.empty());
  for (const auto& d : all.items()) EXPECT_NO_THROW(pass_info(d.code)) << d.code;
}

TEST(Renderers, TextFormatIsCompilerStyle) {
  util::Diagnostics diags;
  diags.error("G001", "model", "layer", "bad shape", "fix it");
  diags.warn("S008", "cfg", "batch", "too big");
  const std::string text = util::render_text(diags);
  EXPECT_NE(text.find("error G001 [model:layer] bad shape (hint: fix it)"),
            std::string::npos) << text;
  EXPECT_NE(text.find("warning S008 [cfg:batch] too big"), std::string::npos) << text;
  EXPECT_NE(text.find("1 error(s), 1 warning(s), 0 advice"), std::string::npos) << text;
}

TEST(Renderers, JsonEscapesAndCounts) {
  util::Diagnostics diags;
  diags.advice("H003", "cfg", "cycle_time_s", "contains \"quotes\" and\nnewline");
  const std::string json = util::render_json(diags);
  EXPECT_NE(json.find("\"code\":\"H003\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"advice\":1"), std::string::npos) << json;
}

TEST(Registry, CodeLetterDeterminesTheFamily) {
  // The family is a function of the code prefix — one family per lint_*
  // letter, and the V space split between the engine model checker (V0xx),
  // the trace verifier (V1xx), and the elastic crash/rejoin checker (V2xx).
  // No code may sit in a family its prefix does not name, and no family may
  // be empty.
  const std::map<std::string, std::string> prefix_to_family = {
      {"G", "graph"},         {"P", "platform"},       {"N", "network"},
      {"H", "policy"},        {"S", "schedule"},       {"A", "advisor"},
      {"M", "metrics"},       {"O", "optimizer"},      {"V0", "verify-engine"},
      {"V1", "verify-trace"}, {"V2", "verify-elastic"}, {"T", "profile"},
      {"F", "scenario"},
  };
  std::set<std::string> seen_families;
  for (const auto& info : pass_registry()) {
    const std::string prefix =
        info.code.front() == 'V' ? info.code.substr(0, 2) : info.code.substr(0, 1);
    const auto it = prefix_to_family.find(prefix);
    ASSERT_NE(it, prefix_to_family.end()) << "unmapped code prefix: " << info.code;
    EXPECT_EQ(info.family, it->second) << info.code;
    seen_families.insert(info.family);
  }
  EXPECT_EQ(seen_families.size(), prefix_to_family.size());
}

TEST(Registry, VerifyCodesAreRegistered) {
  EXPECT_EQ(pass_info("V001").family, "verify-engine");
  EXPECT_EQ(pass_info("V006").severity, Severity::Warn);
  EXPECT_EQ(pass_info("V101").family, "verify-trace");
  EXPECT_EQ(pass_info("V104").severity, Severity::Error);
  EXPECT_EQ(pass_info("V201").family, "verify-elastic");
  EXPECT_EQ(pass_info("V205").severity, Severity::Error);
  EXPECT_EQ(pass_info("F001").family, "scenario");
  EXPECT_EQ(pass_info("F004").severity, Severity::Error);
}

TEST(Renderers, JsonEnvelopeRoundTrips) {
  util::Diagnostics diags;
  diags.error("V001", "engine", "protocol", "deadlock: \"stuck\"", "widen the window");
  diags.warn("V006", "engine", "bounds", "truncated");
  diags.advice("H003", "cfg", "cycle_time_s", "tune\nme");

  const util::Diagnostics parsed = util::parse_diagnostics(util::render_json(diags));
  ASSERT_EQ(parsed.size(), diags.size());
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const auto& a = diags.items()[i];
    const auto& b = parsed.items()[i];
    EXPECT_EQ(a.code, b.code);
    EXPECT_EQ(a.severity, b.severity);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.field, b.field);
    EXPECT_EQ(a.message, b.message);
    EXPECT_EQ(a.hint, b.hint);
  }
}

TEST(Renderers, ParseRejectsUnknownSchemaAndGarbage) {
  EXPECT_THROW(util::parse_diagnostics("{\"schema\":\"other-v9\",\"diagnostics\":[]}"),
               std::runtime_error);
  EXPECT_THROW(util::parse_diagnostics("not json"), std::runtime_error);
  // An empty collection round-trips too.
  EXPECT_TRUE(util::parse_diagnostics(util::render_json(util::Diagnostics{})).empty());
}

TEST(Renderers, GithubAnnotationsEscapeWorkflowSyntax) {
  util::Diagnostics diags;
  diags.error("V001", "engine", "protocol", "deadlock 50% in,\nline two", "fix: widen");
  diags.warn("S008", "cfg", "", "big batch");
  diags.advice("H003", "cfg", "cycle_time_s", "tune");
  const std::string out = util::render_github(diags);
  EXPECT_NE(out.find("::error title=V001 engine%3Aprotocol::deadlock 50%25 in,%0Aline two "
                     "(hint: fix: widen)"),
            std::string::npos) << out;
  EXPECT_NE(out.find("::warning title=S008 cfg::big batch"), std::string::npos) << out;
  EXPECT_NE(out.find("::notice title=H003"), std::string::npos) << out;
}

}  // namespace
}  // namespace dnnperf::analysis
