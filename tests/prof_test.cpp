// Profiler subsystem tests: the shared trace model, golden synthetic traces
// with known phase structure (breakdown, critical path, overlap, straggler
// attribution, verdicts), fresh real-engine and DES recordings profiled
// end-to-end, the predicted-vs-measured comparison, the T-family
// diagnostics, and the analytic sim-point classifier.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <string>

#include "hvd/timeline.hpp"
#include "hw/platforms.hpp"
#include "mpi/cost.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "prof/compare.hpp"
#include "prof/profile.hpp"
#include "prof/trace_model.hpp"
#include "train/real_trainer.hpp"
#include "util/diag.hpp"
#include "util/trace.hpp"

namespace dnnperf::prof {
namespace {

std::string trace_doc(const std::string& events) {
  return "{\"traceEvents\":[" + events + "]}";
}

std::string span(const char* name, int pid, int tid, double ts, double dur,
                 const std::string& args = {}) {
  std::string e = "{\"name\":\"" + std::string(name) + "\",\"ph\":\"X\",\"pid\":" +
                  std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
                  ",\"ts\":" + std::to_string(ts) + ",\"dur\":" + std::to_string(dur);
  if (!args.empty()) e += ",\"args\":{" + args + "}";
  return e + "}";
}

std::string thread_meta(int pid, int tid, const std::string& name) {
  return "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":" + std::to_string(tid) + ",\"ts\":0,\"args\":{\"name\":\"" + name + "\"}}";
}

/// One golden step on a real rank track (µs, offset by `t0`): step 1000 =
/// input 100 + forward 250 + backward 400 + exchange 200 + optimizer 50,
/// with the engine leaves nested inside exchange (comm busy 190, one 4 MiB
/// data allreduce).
std::string golden_step(int tid, double t0, double bwd_extra = 0.0) {
  const double bwd_end = t0 + 350 + 400 + bwd_extra;
  std::string e;
  e += span("step", 1, tid, t0, 1000 + bwd_extra) + ",";
  e += span("input", 1, tid, t0, 100) + ",";
  e += span("forward", 1, tid, t0 + 100, 250) + ",";
  e += span("backward", 1, tid, t0 + 350, 400 + bwd_extra) + ",";
  e += span("exchange", 1, tid, bwd_end, 200) + ",";
  e += span("engine.cycle", 1, tid, bwd_end, 190) + ",";
  e += span("negotiate", 1, tid, bwd_end, 50) + ",";
  e += span("fusion.pack", 1, tid, bwd_end + 50, 10) + ",";
  e += span("allreduce.data", 1, tid, bwd_end + 60, 120, "\"bytes\":4194304,\"tensors\":3") + ",";
  e += span("fusion.unpack", 1, tid, bwd_end + 180, 10) + ",";
  e += span("optimizer", 1, tid, bwd_end + 200, 50);
  return e;
}

/// Two symmetric ranks, two steps each: every share is known in closed form.
std::string golden_two_rank_trace() {
  std::string e = thread_meta(1, 10, "rank 0") + "," + thread_meta(1, 11, "rank 1");
  for (int s = 0; s < 2; ++s) {
    e += "," + golden_step(10, s * 1000.0);
    e += "," + golden_step(11, s * 1000.0);
  }
  return trace_doc(e);
}

ProfileReport profile(const std::string& text, const ProfileOptions& options = {}) {
  return profile_trace_text(text, "test-trace", options);
}

// ---------------------------------------------------------------------------
// Trace model
// ---------------------------------------------------------------------------

TEST(TraceModel, ParsesTracksNamesAndArgs) {
  const std::string text = trace_doc(
      thread_meta(1, 10, "rank 0") + "," + thread_meta(2, 7, "sim rank 3") + "," +
      span("step", 1, 10, 0, 100, "\"step\":2") + "," +
      span("allreduce.data", 1, 10, 10, 20, "\"bytes\":1024,\"tensors\":2") + "," +
      span("compute", 2, 7, 0, 50));
  util::Diagnostics diags;
  const TraceModel model = parse_trace(text, "t", diags);
  ASSERT_TRUE(diags.empty()) << util::render_text(diags);
  ASSERT_EQ(model.tracks.size(), 2u);
  EXPECT_EQ(model.tracks[0].thread_name, "rank 0");
  EXPECT_EQ(model.tracks[0].rank(), 0);
  EXPECT_FALSE(model.tracks[0].simulated());
  EXPECT_EQ(model.tracks[1].rank(), 3);
  EXPECT_TRUE(model.tracks[1].simulated());
  ASSERT_EQ(model.tracks[0].spans.size(), 2u);
  EXPECT_EQ(model.tracks[0].spans[0].name, "step");
  EXPECT_DOUBLE_EQ(model.tracks[0].spans[0].step, 2.0);
  EXPECT_DOUBLE_EQ(model.tracks[0].spans[1].bytes, 1024.0);
  EXPECT_DOUBLE_EQ(model.tracks[0].spans[1].tensors, 2.0);
}

TEST(TraceModel, SpansSortedParentBeforeChild) {
  // Same start: the longer (parent) span must come first.
  const std::string text =
      trace_doc(span("child", 1, 1, 0, 10) + "," + span("parent", 1, 1, 0, 100));
  util::Diagnostics diags;
  const TraceModel model = parse_trace(text, "t", diags);
  ASSERT_EQ(model.tracks.size(), 1u);
  ASSERT_EQ(model.tracks[0].spans.size(), 2u);
  EXPECT_EQ(model.tracks[0].spans[0].name, "parent");
}

TEST(TraceModel, MalformedDocumentsAreV101AndEmpty) {
  for (const char* bad : {"not json at all", "{}", "[1,2,3]"}) {
    util::Diagnostics diags;
    const TraceModel model = parse_trace(bad, "bad", diags);
    EXPECT_TRUE(diags.has_code("V101")) << bad;
    EXPECT_TRUE(model.empty()) << bad;
  }
}

TEST(TraceModel, UnreadableFileIsV101) {
  util::Diagnostics diags;
  const TraceModel model = parse_trace_file("/nonexistent/trace.json", diags);
  EXPECT_TRUE(diags.has_code("V101"));
  EXPECT_TRUE(model.empty());
}

// ---------------------------------------------------------------------------
// Golden synthetic traces
// ---------------------------------------------------------------------------

TEST(Profiler, GoldenPhaseBreakdown) {
  const ProfileReport r = profile(golden_two_rank_trace());
  EXPECT_FALSE(r.diags.has_errors()) << util::render_text(r.diags);
  EXPECT_FALSE(r.simulated);
  EXPECT_EQ(r.ranks, 2);
  EXPECT_EQ(r.steps, 2);
  EXPECT_NEAR(r.step_s, 1000e-6, 1e-9);
  ASSERT_EQ(r.phases.size(), 6u);  // five phases + "other"
  EXPECT_NEAR(r.input_s, 100e-6, 1e-9);
  EXPECT_NEAR(r.forward_s, 250e-6, 1e-9);
  EXPECT_NEAR(r.backward_s, 400e-6, 1e-9);
  EXPECT_NEAR(r.exchange_s, 200e-6, 1e-9);
  EXPECT_NEAR(r.optimizer_s, 50e-6, 1e-9);
  EXPECT_NEAR(r.unattributed_fraction, 0.0, 1e-9);
  EXPECT_EQ(r.verdict, Verdict::ComputeBound);  // compute 70% vs comm 20%
}

TEST(Profiler, GoldenCriticalPathDominatedByBackward) {
  const ProfileReport r = profile(golden_two_rank_trace());
  EXPECT_NEAR(r.critical_path_s, 1000e-6, 1e-9);
  ASSERT_FALSE(r.critical_path.empty());
  double backward_share = 0.0;
  for (const CriticalSegment& seg : r.critical_path)
    if (seg.phase == "backward") backward_share = seg.share;
  EXPECT_NEAR(backward_share, 0.4, 1e-6);
  EXPECT_NEAR(r.critical_path_share, 0.4, 1e-6);
  EXPECT_GE(r.critical_rank, 0);
}

TEST(Profiler, GoldenUtilizationAndZeroOverlap) {
  const ProfileReport r = profile(golden_two_rank_trace());
  ASSERT_EQ(r.utilization.size(), 2u);
  for (const RankUtilization& u : r.utilization) {
    EXPECT_NEAR(u.step_s, 2000e-6, 1e-9);      // two steps
    EXPECT_NEAR(u.compute_s, 1600e-6, 1e-9);   // (100+250+400+50) * 2
    EXPECT_NEAR(u.exposed_s, 400e-6, 1e-9);    // 200 * 2
    EXPECT_NEAR(u.comm_busy_s, 380e-6, 1e-9);  // 190 * 2 (engine.cycle excluded)
    EXPECT_NEAR(u.compute_fraction, 0.8, 1e-6);
  }
  // The real engine runs on the framework thread inside exchange — nothing
  // of its busy time can overlap the compute phases.
  EXPECT_NEAR(r.overlap_fraction, 0.0, 1e-9);
}

TEST(Profiler, SymmetricRanksHaveNoSkew) {
  const ProfileReport r = profile(golden_two_rank_trace());
  EXPECT_NEAR(r.skew_fraction, 0.0, 1e-9);
  EXPECT_NEAR(r.straggler_slack_p99_s, 0.0, 1e-9);
  EXPECT_FALSE(r.diags.has_code("T003"));
}

TEST(Profiler, InjectedStragglerIsAttributed) {
  // Three ranks; rank 2's backward runs 250 µs longer each step, so the
  // other ranks' exchange stretches to cover the wait. Skew = 250/1250 = 20%
  // of step time, above both the 10% floor and half the exposed-comm share.
  std::string e = thread_meta(1, 10, "rank 0") + "," + thread_meta(1, 11, "rank 1") + "," +
                  thread_meta(1, 12, "rank 2");
  for (int s = 0; s < 2; ++s) {
    const double t0 = s * 1250.0;
    // Fast ranks: same phase layout, exchange padded to the straggler's pace.
    for (int tid : {10, 11}) {
      const double bwd_end = t0 + 750;
      e += "," + span("step", 1, tid, t0, 1250);
      e += "," + span("input", 1, tid, t0, 100);
      e += "," + span("forward", 1, tid, t0 + 100, 250);
      e += "," + span("backward", 1, tid, t0 + 350, 400);
      e += "," + span("exchange", 1, tid, bwd_end, 450);
      e += "," + span("negotiate", 1, tid, bwd_end, 50);
      e += "," + span("allreduce.data", 1, tid, bwd_end + 300, 120, "\"bytes\":4194304");
      e += "," + span("optimizer", 1, tid, t0 + 1200, 50);
    }
    e += "," + golden_step(12, t0, 250.0);  // rank 2: backward 650, step 1250
  }
  const ProfileReport r = profile(trace_doc(e));
  EXPECT_EQ(r.verdict, Verdict::StragglerBound) << r.verdict_reason;
  EXPECT_EQ(r.straggler_rank, 2);
  EXPECT_EQ(r.critical_rank, 2);  // its backward bounds the dominant segment
  EXPECT_NEAR(r.skew_fraction, 250.0 / 1250.0, 1e-6);
  EXPECT_GT(r.straggler_slack_p99_s, 200e-6);
  EXPECT_TRUE(r.diags.has_code("T003")) << util::render_text(r.diags);
  // Fast ranks wait 250 µs/step on the straggler; the straggler waits 0.
  ASSERT_EQ(r.utilization.size(), 3u);
  EXPECT_NEAR(r.utilization[0].slack_mean_s, 250e-6, 1e-9);
  EXPECT_NEAR(r.utilization[2].slack_mean_s, 0.0, 1e-9);
}

TEST(Profiler, SimulatedTraceOverlapAgainstEngineTrack) {
  // DES-style document: the engine track runs concurrently with compute.
  // allreduce busy [0.5 s, 0.9 s) intersects the compute union
  // [0, 0.7) ∪ [0.95, 1.0) over [0.5, 0.7) → overlap = 0.2/0.4 = 50%.
  const std::string text = trace_doc(
      thread_meta(2, 1, "compute") + "," + thread_meta(2, 2, "hvd engine") + "," +
      span("step", 2, 1, 0, 1000000) + "," + span("forward", 2, 1, 0, 300000) + "," +
      span("backward", 2, 1, 300000, 400000) + "," +
      span("exchange", 2, 1, 700000, 250000) + "," +
      span("optimizer", 2, 1, 950000, 50000) + "," +
      span("allreduce.data", 2, 2, 500000, 400000, "\"bytes\":8388608"));
  const ProfileReport r = profile(text);
  EXPECT_TRUE(r.simulated);
  EXPECT_EQ(r.steps, 1);
  EXPECT_NEAR(r.overlap_fraction, 0.5, 1e-6);
  EXPECT_NEAR(r.step_s, 1.0, 1e-9);
  EXPECT_EQ(r.verdict, Verdict::ComputeBound);  // compute 75% vs exposed 25%
}

TEST(Profiler, UnattributedStepTimeFiresT001) {
  // Phases cover only 700 of 1000 µs — 30% of the step is unexplained.
  const std::string text = trace_doc(
      thread_meta(1, 10, "rank 0") + "," + span("step", 1, 10, 0, 1000) + "," +
      span("forward", 1, 10, 0, 400) + "," + span("backward", 1, 10, 400, 300));
  const ProfileReport r = profile(text);
  EXPECT_NEAR(r.unattributed_fraction, 0.3, 1e-6);
  EXPECT_TRUE(r.diags.has_code("T001")) << util::render_text(r.diags);
  EXPECT_FALSE(r.diags.has_errors());
}

TEST(Profiler, NoStepStructureIsT005Error) {
  const ProfileReport r =
      profile(trace_doc(span("gemm", 1, 1, 0, 100) + "," + span("gemm", 1, 1, 200, 100)));
  EXPECT_TRUE(r.diags.has_code("T005"));
  EXPECT_TRUE(r.diags.has_errors());
  EXPECT_EQ(r.steps, 0);
}

TEST(Profiler, AllreduceBucketsAgainstCostModel) {
  const mpi::CollectiveCostModel cost(
      net::Topology(1, 2, hw::FabricKind::InfiniBandEDR, net::shared_memory_params()));
  ProfileOptions options;
  options.cost = &cost;
  const ProfileReport r = profile(golden_two_rank_trace(), options);
  ASSERT_EQ(r.allreduce.size(), 1u);  // every span is 4 MiB → one bucket
  const AllreduceBucket& b = r.allreduce[0];
  EXPECT_DOUBLE_EQ(b.lo_bytes, 1024.0 * 1024);
  EXPECT_EQ(b.count, 4u);  // 2 ranks x 2 steps
  EXPECT_NEAR(b.busy_s, 480e-6, 1e-9);
  EXPECT_GT(b.achieved_gbs, 0.0);
  EXPECT_GT(b.model_s, 0.0);
  EXPECT_GT(b.efficiency, 0.0);
}

TEST(Profiler, GradEventsExtractedFromFirstStep) {
  const ProfileReport r = profile(golden_two_rank_trace());
  ASSERT_EQ(r.grad_events.size(), 1u);  // rank 0, step 0: one data allreduce
  EXPECT_NEAR(r.grad_events[0].time, 460e-6, 1e-9);  // vs backward start at 350
  EXPECT_DOUBLE_EQ(r.grad_events[0].bytes, 4194304.0);
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

TEST(Profiler, JsonEnvelopeAndTextReport) {
  const ProfileReport r = profile(golden_two_rank_trace());
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"schema\":\"dnnperf-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"ComputeBound\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  const std::string text = to_text(r);
  EXPECT_NE(text.find("verdict: ComputeBound"), std::string::npos);
  EXPECT_NE(text.find("backward"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Predicted vs measured
// ---------------------------------------------------------------------------

TEST(CompareSim, ComputePhasesRoundTripExactly) {
  const mpi::CollectiveCostModel cost(
      net::Topology(1, 2, hw::FabricKind::InfiniBandEDR, net::shared_memory_params()));
  ProfileOptions options;
  options.cost = &cost;
  const ProfileReport r = profile(golden_two_rank_trace(), options);
  const hvd::FusionPolicy policy;
  const CompareReport c = compare_with_sim(r, policy, &cost);
  ASSERT_EQ(c.phases.size(), 5u);
  for (const PhaseError& row : c.phases) {
    if (row.phase == "forward" || row.phase == "backward" || row.phase == "optimizer")
      EXPECT_NEAR(row.rel_error, 0.0, 1e-12) << row.phase;  // fed from the measurement
    EXPECT_TRUE(std::isfinite(row.rel_error)) << row.phase;
    EXPECT_GT(row.predicted_s, 0.0) << row.phase;
  }
  EXPECT_EQ(c.phases.back().phase, "step");
  EXPECT_DOUBLE_EQ(c.step_rel_error, c.phases.back().rel_error);
  EXPECT_NE(to_json(c).find("\"step_rel_error\""), std::string::npos);
  EXPECT_NE(to_text(c).find("predicted vs measured"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fresh recordings (real engine + DES)
// ---------------------------------------------------------------------------

/// Every recording test starts and ends with a clean, disabled trace state.
class ProfileRecorded : public ::testing::Test {
 protected:
  void SetUp() override {
    util::trace::set_enabled(false);
    util::trace::reset();
  }
  void TearDown() override {
    util::trace::set_enabled(false);
    util::trace::reset();
  }

  static std::string dump() {
    std::ostringstream os;
    util::trace::write_json(os);
    return os.str();
  }
};

TEST_F(ProfileRecorded, FreshTwoRankTrainingTraceProfilesClean) {
  util::trace::set_enabled(true);
  train::RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 2;
  cfg.steps = 3;
  (void)train::run_real_training(cfg);
  util::trace::set_enabled(false);

  const hvd::FusionPolicy policy;
  ProfileOptions options;
  options.policy = &policy;
  const ProfileReport r = profile_trace_text(dump(), "real-2rank", options);
  EXPECT_FALSE(r.diags.has_errors()) << util::render_text(r.diags);
  EXPECT_FALSE(r.simulated);
  EXPECT_EQ(r.ranks, 2);
  EXPECT_EQ(r.steps, 3);
  EXPECT_GT(r.step_s, 0.0);
  EXPECT_GT(r.forward_s, 0.0);
  EXPECT_GT(r.backward_s, 0.0);
  EXPECT_GT(r.critical_path_s, 0.0);
  EXPECT_LT(r.unattributed_fraction, 0.25);
  EXPECT_FALSE(r.grad_events.empty());
  EXPECT_FALSE(r.verdict_reason.empty());
}

TEST_F(ProfileRecorded, DesTimelineTraceProfilesAsSimulated) {
  util::trace::set_enabled(true);
  const mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  hvd::TimelineInput in;
  in.fwd_time = 0.1;
  in.bwd_time = 0.2;
  in.optimizer_time = 0.01;
  in.iterations = 2;
  in.cost = &cost;
  for (int i = 0; i < 5; ++i) in.grad_events.push_back({0.02 * (i + 1), 1e6});
  const auto sim = hvd::simulate_training(in);
  util::trace::set_enabled(false);

  const ProfileReport r = profile_trace_text(dump(), "des-timeline", {});
  EXPECT_FALSE(r.diags.has_errors()) << util::render_text(r.diags);
  EXPECT_TRUE(r.simulated);
  EXPECT_EQ(r.steps, 2);
  EXPECT_NEAR(r.step_s, sim.per_iteration, 0.05 * sim.per_iteration + 2e-6);
  // The DES engine track runs concurrently with compute; with gradients
  // submitted early in a long backward pass, some busy time must overlap.
  EXPECT_GT(r.overlap_fraction, 0.0);
}

TEST_F(ProfileRecorded, ThousandRankPerRankDesTraceUnderWallBudget) {
  util::trace::set_enabled(true);
  const mpi::CollectiveCostModel cost(net::Topology(64, 16, hw::FabricKind::OmniPath));
  hvd::TimelineInput in;
  in.fwd_time = 0.05;
  in.bwd_time = 0.15;
  in.optimizer_time = 0.005;
  in.iterations = 2;
  in.cost = &cost;
  in.sim_ranks = 1024;
  in.per_rank_jitter_cv = 0.08;
  for (int i = 0; i < 8; ++i) in.grad_events.push_back({0.015 * (i + 1), 2e6});
  const auto t0 = std::chrono::steady_clock::now();
  (void)hvd::simulate_training(in);
  util::trace::set_enabled(false);

  const ProfileReport r = profile_trace_text(dump(), "des-1024", {});
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_FALSE(r.diags.has_errors()) << util::render_text(r.diags);
  EXPECT_TRUE(r.simulated);
  EXPECT_EQ(r.ranks, 1024);  // one "sim rank N" track per rank
  ASSERT_EQ(r.utilization.size(), 1024u);
  EXPECT_GE(r.straggler_rank, 0);  // jitter makes some rank trail
  EXPECT_LT(wall, 20.0) << "simulate + profile of a 1024-rank trace blew the wall budget";
}

// ---------------------------------------------------------------------------
// Sim-point classifier (advisor/scaling-curve attribution)
// ---------------------------------------------------------------------------

TEST(ClassifySimPoint, ComputeBoundWhenComputeDominates) {
  SimPointInputs in;
  in.step_s = 1.0;
  in.forward_s = 0.3;
  in.backward_s = 0.5;
  in.optimizer_s = 0.05;
  in.comm_exposed_fraction = 0.1;
  in.comm_busy_s = 0.2;
  const SimPointVerdict v = classify_sim_point(in);
  EXPECT_EQ(v.verdict, Verdict::ComputeBound);
  EXPECT_NEAR(v.compute_share, 0.85, 1e-9);
  // busy 0.2 s of which 0.1 s is exposed → half overlapped.
  EXPECT_NEAR(v.overlap_fraction, 0.5, 1e-9);
}

TEST(ClassifySimPoint, CommBoundWhenExposedExchangeDominates) {
  SimPointInputs in;
  in.step_s = 1.0;
  in.forward_s = 0.1;
  in.backward_s = 0.2;
  in.comm_exposed_fraction = 0.65;
  in.comm_busy_s = 0.7;
  const SimPointVerdict v = classify_sim_point(in);
  EXPECT_EQ(v.verdict, Verdict::CommBound) << v.reason;
}

TEST(ClassifySimPoint, StragglerStretchWinsOverComm) {
  SimPointInputs in;
  in.step_s = 1.0;
  in.forward_s = 0.2;
  in.backward_s = 0.4;
  in.comm_exposed_fraction = 0.3;
  in.comm_busy_s = 0.35;
  in.straggler_stretch = 1.4;  // skew share = 0.4 * 0.6 = 0.24 >= 0.5 * 0.3
  const SimPointVerdict v = classify_sim_point(in);
  EXPECT_EQ(v.verdict, Verdict::StragglerBound) << v.reason;
  EXPECT_NEAR(v.straggler_share, 0.24, 1e-9);
}

TEST(ClassifySimPoint, ZeroStepTimeIsInert) {
  const SimPointVerdict v = classify_sim_point({});
  EXPECT_EQ(v.verdict, Verdict::ComputeBound);
  EXPECT_EQ(v.reason, "zero step time");
}

}  // namespace
}  // namespace dnnperf::prof
