// Tests for the Chrome trace-event tracing layer (util/trace) and its
// integration points: thread-pool chunk spans, the real trainer/engine
// timeline, and the DES virtual-time timeline.
//
// The emitted document is validated with the shared minimal JSON parser
// (util/jsonlite) — just enough of RFC 8259 for the subset write_json()
// produces.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "hvd/timeline.hpp"
#include "ref/threadpool.hpp"
#include "train/real_trainer.hpp"
#include "util/jsonlite.hpp"
#include "util/trace.hpp"

namespace dnnperf {
namespace {

namespace trace = util::trace;

using Json = util::jsonlite::Value;

// ---------------------------------------------------------------------------
// Helpers over a parsed trace document
// ---------------------------------------------------------------------------

/// Serializes the current trace buffers and parses them back.
Json dump_and_parse() {
  std::ostringstream os;
  trace::write_json(os);
  return util::jsonlite::parse(os.str(), "trace JSON");
}

const std::vector<Json>& events_of(const Json& doc) { return doc.at("traceEvents").array; }

/// Every non-metadata event must carry the viewer's required fields.
void check_required_fields(const Json& doc) {
  for (const Json& e : events_of(doc)) {
    ASSERT_EQ(e.kind, Json::Kind::Object);
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("pid"));
    ASSERT_TRUE(e.has("tid"));
    ASSERT_TRUE(e.has("ts"));
    if (e.at("ph").string == "X") {
      ASSERT_TRUE(e.has("dur"));
    }
  }
}

struct Interval {
  std::string name;
  double start;
  double end;
};

/// Complete ('X') events grouped per (pid, tid) track.
std::map<std::pair<int, int>, std::vector<Interval>> spans_by_track(const Json& doc) {
  std::map<std::pair<int, int>, std::vector<Interval>> tracks;
  for (const Json& e : events_of(doc)) {
    if (e.at("ph").string != "X") continue;
    const auto key = std::make_pair(static_cast<int>(e.at("pid").number),
                                    static_cast<int>(e.at("tid").number));
    const double ts = e.at("ts").number;
    tracks[key].push_back({e.at("name").string, ts, ts + e.at("dur").number});
  }
  return tracks;
}

/// Spans on one thread's track come from nested RAII scopes, so any two must
/// be disjoint or properly nested — partial overlap means a broken timeline.
/// Strict inequalities tolerate ties from microsecond rounding.
void check_nesting(const Json& doc) {
  for (const auto& [track, spans] : spans_by_track(doc)) {
    for (std::size_t i = 0; i < spans.size(); ++i) {
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const Interval& a = spans[i];
        const Interval& b = spans[j];
        // 1 µs slop: DES virtual spans round ts and dur to µs independently,
        // so a parent scope can end 1 µs before a child it fully contains.
        const bool partial_overlap =
            (a.start < b.start && b.start < a.end && a.end + 1.0 < b.end) ||
            (b.start < a.start && a.start < b.end && b.end + 1.0 < a.end);
        EXPECT_FALSE(partial_overlap)
            << a.name << " [" << a.start << "," << a.end << ") and " << b.name << " ["
            << b.start << "," << b.end << ") partially overlap on pid/tid " << track.first
            << "/" << track.second;
      }
    }
  }
}

int count_spans(const Json& doc, const std::string& name) {
  int n = 0;
  for (const Json& e : events_of(doc))
    if (e.at("ph").string == "X" && e.at("name").string == name) ++n;
  return n;
}

/// Test fixture: every test starts from a clean, disabled trace state.
class Trace : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::reset();
  }
};

// ---------------------------------------------------------------------------
// Core layer
// ---------------------------------------------------------------------------

TEST_F(Trace, DisabledRecordsNothing) {
  ASSERT_FALSE(trace::enabled());
  {
    DNNPERF_TRACE_SPAN("test", "outer");
    DNNPERF_TRACE_SPAN_VAR(span, "test", "inner");
    EXPECT_FALSE(span.active());
    trace::emit_instant("nope", "test");
    trace::emit_counter("nope", 1.0);
    trace::emit_virtual_complete("nope", "test", trace::kSimulatedPid, 1, 0.0, 1.0);
  }
  EXPECT_EQ(trace::event_count(), 0u);
  const Json doc = dump_and_parse();
  EXPECT_TRUE(events_of(doc).empty());
}

TEST_F(Trace, SpansNestAndSerialize) {
  trace::set_enabled(true);
  {
    DNNPERF_TRACE_SPAN("test", "outer");
    { DNNPERF_TRACE_SPAN("test", "inner_a"); }
    { DNNPERF_TRACE_SPAN("test", "inner_b"); }
  }
  trace::set_enabled(false);

  const Json doc = dump_and_parse();
  ASSERT_EQ(events_of(doc).size(), 3u);
  check_required_fields(doc);
  check_nesting(doc);
  EXPECT_EQ(count_spans(doc, "outer"), 1);
  EXPECT_EQ(count_spans(doc, "inner_a"), 1);
  EXPECT_EQ(count_spans(doc, "inner_b"), 1);
  for (const Json& e : events_of(doc)) {
    EXPECT_EQ(static_cast<int>(e.at("pid").number), trace::kRealPid);
    EXPECT_EQ(e.at("cat").string, "test");
  }
}

TEST_F(Trace, ArgsCountersAndEscaping) {
  trace::set_enabled(true);
  {
    DNNPERF_TRACE_SPAN_VAR(span, "test", "work");
    ASSERT_TRUE(span.active());
    span.set_args(std::move(trace::Args().add("m", 64).add("path", "packed")).str());
    span.set_flops(1.0e9);
  }
  trace::emit_counter("queue_depth", 7.0);
  trace::emit_instant("note", "test",
                      std::move(trace::Args().add("text", "quote\" and \\slash\n")).str());
  trace::set_enabled(false);

  const Json doc = dump_and_parse();
  check_required_fields(doc);
  bool saw_span = false, saw_counter = false, saw_instant = false;
  for (const Json& e : events_of(doc)) {
    if (e.at("name").string == "work") {
      saw_span = true;
      const Json& args = e.at("args");
      EXPECT_EQ(args.at("m").number, 64.0);
      EXPECT_EQ(args.at("path").string, "packed");
      EXPECT_TRUE(args.has("gflops"));  // derived by the Span destructor
    } else if (e.at("name").string == "queue_depth") {
      saw_counter = true;
      EXPECT_EQ(e.at("ph").string, "C");
      EXPECT_EQ(e.at("args").at("value").number, 7.0);
    } else if (e.at("name").string == "note") {
      saw_instant = true;
      EXPECT_EQ(e.at("ph").string, "i");
      EXPECT_EQ(e.at("args").at("text").string, "quote\" and \\slash\n");
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_instant);
}

TEST_F(Trace, VirtualEventsCarryPidAndVirtualTime) {
  trace::set_enabled(true);
  trace::set_virtual_track_name(trace::kSimulatedPid, 3, "sim proc", "sim track");
  trace::emit_virtual_complete("phase", "sim", trace::kSimulatedPid, 3, 0.5, 0.25);
  trace::emit_virtual_counter("depth", trace::kSimulatedPid, 1.0, 4.0);
  trace::set_enabled(false);

  const Json doc = dump_and_parse();
  check_required_fields(doc);
  bool saw_phase = false, saw_meta = false;
  for (const Json& e : events_of(doc)) {
    if (e.at("name").string == "phase") {
      saw_phase = true;
      EXPECT_EQ(static_cast<int>(e.at("pid").number), trace::kSimulatedPid);
      EXPECT_EQ(static_cast<int>(e.at("tid").number), 3);
      EXPECT_EQ(e.at("ts").number, 500000.0);   // 0.5 s in microseconds
      EXPECT_EQ(e.at("dur").number, 250000.0);  // 0.25 s
    } else if (e.at("name").string == "thread_name") {
      saw_meta = true;
      EXPECT_EQ(e.at("args").at("name").string, "sim track");
    }
  }
  EXPECT_TRUE(saw_phase);
  EXPECT_TRUE(saw_meta);
}

TEST_F(Trace, ResetDropsEverything) {
  trace::set_enabled(true);
  { DNNPERF_TRACE_SPAN("test", "before_reset"); }
  EXPECT_EQ(trace::event_count(), 1u);
  trace::reset();
  EXPECT_EQ(trace::event_count(), 0u);
  { DNNPERF_TRACE_SPAN("test", "after_reset"); }
  trace::set_enabled(false);
  const Json doc = dump_and_parse();
  EXPECT_EQ(count_spans(doc, "before_reset"), 0);
  EXPECT_EQ(count_spans(doc, "after_reset"), 1);
}

// ---------------------------------------------------------------------------
// Integration: thread pool, real training, DES timeline
// ---------------------------------------------------------------------------

TEST_F(Trace, ThreadPoolChunksCoverRange) {
  trace::set_enabled(true);
  {
    ref::ThreadPool pool(4);
    std::atomic<int> sink{0};
    pool.parallel_for(257, [&](std::size_t b, std::size_t e) {
      sink += static_cast<int>(e - b);
    });
    ASSERT_EQ(sink.load(), 257);
  }
  trace::set_enabled(false);

  const Json doc = dump_and_parse();
  check_required_fields(doc);
  double covered = 0.0;
  for (const Json& e : events_of(doc)) {
    if (e.at("ph").string != "X" || e.at("name").string != "chunk") continue;
    covered += e.at("args").at("end").number - e.at("args").at("begin").number;
  }
  EXPECT_EQ(covered, 257.0);
}

TEST_F(Trace, RealTrainingEmitsEngineAndPhaseSpans) {
  // The acceptance scenario: a 2-rank training run with tracing on yields a
  // valid document with per-rank engine spans and per-step phase spans.
  trace::set_enabled(true);
  train::RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 2;
  cfg.steps = 2;
  const auto result = train::run_real_training(cfg);
  trace::set_enabled(false);

  ASSERT_EQ(result.losses.size(), 2u);
  EXPECT_EQ(result.phases.forward.count(), 2u);
  EXPECT_EQ(result.phases.backward.count(), 2u);
  EXPECT_EQ(result.phases.exchange.count(), 2u);
  EXPECT_EQ(result.phases.optimizer.count(), 2u);

  const Json doc = dump_and_parse();
  check_required_fields(doc);
  check_nesting(doc);

  // Engine spans must appear on (at least) two distinct rank tracks.
  std::map<int, int> negotiate_by_tid;
  std::map<int, int> data_ar_by_tid;
  std::vector<std::string> rank_names;
  for (const Json& e : events_of(doc)) {
    if (e.at("ph").string == "X" && e.at("name").string == "negotiate")
      ++negotiate_by_tid[static_cast<int>(e.at("tid").number)];
    if (e.at("ph").string == "X" && e.at("name").string == "allreduce.data")
      ++data_ar_by_tid[static_cast<int>(e.at("tid").number)];
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name" &&
        e.at("args").at("name").string.starts_with("rank "))
      rank_names.push_back(e.at("args").at("name").string);
  }
  EXPECT_GE(negotiate_by_tid.size(), 2u);
  EXPECT_GE(data_ar_by_tid.size(), 2u);
  EXPECT_EQ(rank_names.size(), 2u);

  // One phase span per step per rank.
  EXPECT_EQ(count_spans(doc, "step"), 4);
  EXPECT_EQ(count_spans(doc, "forward"), 4);
  EXPECT_EQ(count_spans(doc, "backward"), 4);
  EXPECT_EQ(count_spans(doc, "exchange"), 4);
  EXPECT_EQ(count_spans(doc, "optimizer"), 4);
}

TEST_F(Trace, SimulatedTimelineEmitsVirtualSpans) {
  trace::set_enabled(true);
  mpi::CollectiveCostModel cost(net::Topology(4, 4, hw::FabricKind::InfiniBandEDR));
  hvd::TimelineInput in;
  in.fwd_time = 0.1;
  in.bwd_time = 0.2;
  in.optimizer_time = 0.01;
  in.iterations = 2;
  in.cost = &cost;
  for (int i = 0; i < 5; ++i) in.grad_events.push_back({0.02 * (i + 1), 1e6});
  const auto result = hvd::simulate_training(in);
  trace::set_enabled(false);

  ASSERT_GT(result.total_time, 0.0);
  const Json doc = dump_and_parse();
  check_required_fields(doc);
  check_nesting(doc);

  int virtual_spans = 0;
  for (const Json& e : events_of(doc)) {
    if (e.at("ph").string != "X") continue;
    EXPECT_EQ(static_cast<int>(e.at("pid").number), trace::kSimulatedPid);
    ++virtual_spans;
    // Virtual timestamps are simulated seconds in µs: the whole run fits in
    // [0, total_time].
    EXPECT_LE(e.at("ts").number + e.at("dur").number, result.total_time * 1e6 + 1.0);
  }
  EXPECT_GT(virtual_spans, 0);
  EXPECT_EQ(count_spans(doc, "forward"), 2);
  EXPECT_EQ(count_spans(doc, "backward"), 2);
  EXPECT_EQ(count_spans(doc, "optimizer"), 2);
  EXPECT_GE(count_spans(doc, "negotiate"), 1);
  EXPECT_GE(count_spans(doc, "allreduce.data"), 1);
}

}  // namespace
}  // namespace dnnperf
