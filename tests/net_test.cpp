#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/topology.hpp"

namespace dnnperf::net {
namespace {

TEST(LinkParams, TransferTimeIsAlphaBeta) {
  LinkParams link;
  link.latency_s = 1e-6;
  link.bandwidth_gbps = 10.0;
  link.per_msg_overhead_s = 1e-7;
  // 1 MB at 10 GB/s = 100 us, plus 1.1 us of fixed costs.
  EXPECT_NEAR(link.transfer_time(1e6), 101.1e-6, 1e-9);
  EXPECT_NEAR(link.transfer_time(0.0), 1.1e-6, 1e-12);
  EXPECT_THROW(link.transfer_time(-1.0), std::invalid_argument);
}

TEST(LinkParams, FabricsAreOrdered) {
  const auto edr = fabric_params(hw::FabricKind::InfiniBandEDR);
  const auto opa = fabric_params(hw::FabricKind::OmniPath);
  const auto eth = fabric_params(hw::FabricKind::Ethernet10G);
  // Both 100 Gb fabrics are far faster than 10GigE.
  EXPECT_GT(edr.bandwidth_gbps, 5.0 * eth.bandwidth_gbps);
  EXPECT_GT(opa.bandwidth_gbps, 5.0 * eth.bandwidth_gbps);
  EXPECT_LT(edr.latency_s, eth.latency_s);
}

TEST(LinkParams, SharedMemoryBeatsFabricForSmallMessages) {
  const auto shm = shared_memory_params();
  const auto edr = fabric_params(hw::FabricKind::InfiniBandEDR);
  EXPECT_LT(shm.transfer_time(64.0), edr.transfer_time(64.0));
}

TEST(Topology, RankMapping) {
  Topology topo(4, 3, hw::FabricKind::InfiniBandEDR);
  EXPECT_EQ(topo.world_size(), 12);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(5), 1);
  EXPECT_EQ(topo.local_rank(5), 2);
  EXPECT_EQ(topo.leader_of(5), 3);
  EXPECT_TRUE(topo.same_node(3, 5));
  EXPECT_FALSE(topo.same_node(2, 3));
  EXPECT_THROW(topo.node_of(12), std::out_of_range);
  EXPECT_THROW(topo.node_of(-1), std::out_of_range);
}

TEST(Topology, LinkSelectionByLocality) {
  Topology topo(2, 2, hw::FabricKind::InfiniBandEDR);
  // Ranks 0,1 share node 0; rank 2 is on node 1.
  EXPECT_LT(topo.p2p_time(0, 1, 64.0), topo.p2p_time(0, 2, 64.0));
  EXPECT_EQ(topo.p2p_time(1, 1, 1e6), 0.0);
}

TEST(Topology, CustomIntraNodeLink) {
  Topology topo(2, 2, hw::FabricKind::InfiniBandEDR, pcie3_x16_params());
  EXPECT_DOUBLE_EQ(topo.intra_node().latency_s, pcie3_x16_params().latency_s);
}

TEST(Topology, RejectsBadSizes) {
  EXPECT_THROW(Topology(0, 1, hw::FabricKind::InfiniBandEDR), std::invalid_argument);
  EXPECT_THROW(Topology(1, 0, hw::FabricKind::InfiniBandEDR), std::invalid_argument);
}

}  // namespace
}  // namespace dnnperf::net
