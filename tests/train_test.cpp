#include <gtest/gtest.h>

#include <cmath>

#include "hw/platforms.hpp"
#include "train/real_trainer.hpp"
#include "train/trainer.hpp"

namespace dnnperf::train {
namespace {

TrainConfig skx3(dnn::ModelId model = dnn::ModelId::ResNet50) {
  TrainConfig cfg;
  cfg.cluster = hw::stampede2();
  cfg.model = model;
  cfg.ppn = 4;
  cfg.batch_per_rank = 64;
  return cfg;
}

// ---------------------------------------------------------------------------
// Simulated trainer
// ---------------------------------------------------------------------------

TEST(Trainer, DeterministicAcrossCalls) {
  const auto a = run_training(skx3());
  const auto b = run_training(skx3());
  EXPECT_DOUBLE_EQ(a.images_per_sec, b.images_per_sec);
}

TEST(Trainer, ResolvesPaperThreadRules) {
  // MP with Horovod: intra = cores/ppn - 1, inter = 2 on SMT Skylake-3.
  const auto mp = run_training(skx3());
  EXPECT_EQ(mp.resolved_intra, 11);
  EXPECT_EQ(mp.resolved_inter, 2);

  // PyTorch: one op at a time, pool = its core share.
  auto pt = skx3();
  pt.framework = exec::Framework::PyTorch;
  pt.ppn = 48;
  pt.batch_per_rank = 16;
  const auto r = run_training(pt);
  EXPECT_EQ(r.resolved_intra, 1);
  EXPECT_EQ(r.resolved_inter, 1);
}

TEST(Trainer, MultiProcessBeatsSingleProcess) {
  auto sp = skx3(dnn::ModelId::ResNet152);
  sp.ppn = 1;
  sp.use_horovod = false;
  sp.batch_per_rank = 256;
  auto mp = skx3(dnn::ModelId::ResNet152);
  const double ratio = run_training(mp).images_per_sec / run_training(sp).images_per_sec;
  EXPECT_GT(ratio, 1.2);  // paper: up to 1.35x for ResNet-152
  EXPECT_LT(ratio, 1.8);
}

TEST(Trainer, SpeedupIsSublinearButHigh) {
  for (int nodes : {2, 8, 32}) {
    auto cfg = skx3(dnn::ModelId::ResNet152);
    cfg.nodes = nodes;
    const double s = speedup_vs_single_node(cfg);
    EXPECT_GT(s, 0.85 * nodes) << nodes;
    EXPECT_LE(s, nodes * 1.001) << nodes;
  }
}

TEST(Trainer, EffectiveBatchAndWorldSize) {
  auto cfg = skx3();
  cfg.nodes = 4;
  const auto r = run_training(cfg);
  EXPECT_EQ(r.world_size, 16);
  EXPECT_EQ(r.effective_batch, 16 * 64);
  EXPECT_GT(r.comm.framework_requests, 0u);
  EXPECT_GT(r.comm.engine_allreduces(), 0u);
}

TEST(Trainer, GpuRunUsesGpuModel) {
  TrainConfig cfg;
  cfg.cluster = hw::pitzer_v100();
  cfg.device = DeviceKind::Gpu;
  cfg.ppn = 1;
  cfg.use_horovod = false;
  cfg.batch_per_rank = 64;
  const auto v100 = run_training(cfg);
  cfg.cluster = hw::ri2_k80();
  cfg.batch_per_rank = 32;
  const auto k80 = run_training(cfg);
  EXPECT_GT(v100.images_per_sec, 3.0 * k80.images_per_sec);
}

TEST(Trainer, ValidationErrors) {
  auto cfg = skx3();
  cfg.nodes = 1000;  // exceeds cluster
  EXPECT_THROW(run_training(cfg), std::invalid_argument);

  cfg = skx3();
  cfg.ppn = 4;
  cfg.use_horovod = false;  // multi-rank without Horovod
  EXPECT_THROW(run_training(cfg), std::invalid_argument);

  cfg = skx3();
  cfg.device = DeviceKind::Gpu;  // Stampede2 has no GPUs
  EXPECT_THROW(run_training(cfg), std::invalid_argument);

  cfg = skx3();
  cfg.batch_per_rank = 0;
  EXPECT_THROW(run_training(cfg), std::invalid_argument);

  TrainConfig gpu;
  gpu.cluster = hw::pitzer_v100();
  gpu.device = DeviceKind::Gpu;
  gpu.ppn = 3;  // only 2 GPUs per node
  EXPECT_THROW(run_training(gpu), std::invalid_argument);
}


TEST(Trainer, MemoryValidationRejectsOversizedBatches) {
  // A K80 logical GPU has 12 GB; Inception-v4 at batch 128 cannot fit under
  // the conservative footprint model.
  TrainConfig gpu;
  gpu.cluster = hw::ri2_k80();
  gpu.device = DeviceKind::Gpu;
  gpu.model = dnn::ModelId::InceptionV4;
  gpu.ppn = 1;
  gpu.use_horovod = false;
  gpu.batch_per_rank = 128;
  gpu.validate_memory = true;
  EXPECT_THROW(run_training(gpu), std::invalid_argument);
  gpu.batch_per_rank = 8;
  EXPECT_NO_THROW(run_training(gpu));
  gpu.validate_memory = false;
  gpu.batch_per_rank = 128;
  EXPECT_NO_THROW(run_training(gpu));  // opt-out still simulates
}

TEST(Trainer, MemoryValidationScalesWithPpn) {
  // 8 replicas of ResNet-152 at batch 128 exceed a 192 GB node.
  auto cfg = skx3(dnn::ModelId::ResNet152);
  cfg.ppn = 8;
  cfg.batch_per_rank = 128;
  cfg.validate_memory = true;
  EXPECT_THROW(run_training(cfg), std::invalid_argument);
  cfg.batch_per_rank = 16;
  EXPECT_NO_THROW(run_training(cfg));
}

TEST(Trainer, JitterRaisesIterationTimeAtScale) {
  auto quiet = skx3(dnn::ModelId::ResNet152);
  quiet.nodes = 64;
  quiet.jitter_cv = 0.0;
  auto noisy = quiet;
  noisy.jitter_cv = 0.05;
  EXPECT_GT(run_training(quiet).images_per_sec, run_training(noisy).images_per_sec);
}

// ---------------------------------------------------------------------------
// RealTrainer: actual data-parallel SGD over minimpi + hvd::RealEngine
// ---------------------------------------------------------------------------

class RealRanksParam : public ::testing::TestWithParam<int> {};

TEST_P(RealRanksParam, DataParallelMatchesSingleProcess) {
  RealTrainConfig cfg;
  cfg.ranks = GetParam();
  cfg.batch_per_rank = 8 / GetParam();
  if (cfg.batch_per_rank == 0) GTEST_SKIP();
  cfg.steps = 3;
  cfg.batch_norm = false;  // BN statistics are per-shard; exact match needs no-BN

  const auto mp = run_real_training(cfg);
  const auto sp = run_real_training_single(cfg);

  ASSERT_EQ(mp.final_params.size(), sp.final_params.size());
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < mp.final_params.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(mp.final_params[i] - sp.final_params[i]));
  EXPECT_LT(max_diff, 5e-4f) << "MP parameter trajectory diverged from SP";

  ASSERT_EQ(mp.losses.size(), sp.losses.size());
  for (std::size_t s = 0; s < mp.losses.size(); ++s)
    EXPECT_NEAR(mp.losses[s], sp.losses[s], 5e-3f) << "step " << s;
}

INSTANTIATE_TEST_SUITE_P(Ranks, RealRanksParam, ::testing::Values(1, 2, 4, 8));

TEST(RealTrainer, LossDecreasesWithBatchNorm) {
  RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 8;
  cfg.steps = 12;
  cfg.batch_norm = true;
  cfg.learning_rate = 0.1f;
  const auto r = run_real_training(cfg);
  EXPECT_LT(r.losses.back(), r.losses.front());
}

TEST(RealTrainer, FusionPolicyDoesNotChangeResults) {
  RealTrainConfig tiny;
  tiny.ranks = 3;
  tiny.batch_per_rank = 4;
  tiny.steps = 2;
  tiny.policy.fusion_threshold_bytes = 8.0;  // no fusion
  RealTrainConfig fused = tiny;
  fused.policy.fusion_threshold_bytes = 64.0 * 1024 * 1024;

  const auto a = run_real_training(tiny);
  const auto b = run_real_training(fused);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i)
    ASSERT_NEAR(a.final_params[i], b.final_params[i], 1e-6f);
  // ...but the engine issues far fewer data allreduces when fusing.
  EXPECT_GT(a.comm.data_allreduces, b.comm.data_allreduces);
}

TEST(RealTrainer, CommCountersMatchProtocol) {
  RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 4;
  cfg.steps = 3;
  const auto r = run_real_training(cfg);
  // 6 parameter tensors (no BN) x 3 steps.
  EXPECT_EQ(r.comm.framework_requests, 18u);
  EXPECT_GE(r.comm.engine_wakeups, 3u);
  EXPECT_GT(r.comm.bytes_reduced, 0.0);
  EXPECT_EQ(r.parameters, r.final_params.size());
}


TEST(RealTrainer, HierarchicalExchangeMatchesFlat) {
  RealTrainConfig flat;
  flat.ranks = 4;
  flat.batch_per_rank = 2;
  flat.steps = 2;
  RealTrainConfig hier = flat;
  hier.ranks_per_node = 2;  // 2 "nodes" of 2 ranks
  const auto a = run_real_training(flat);
  const auto b = run_real_training(hier);
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i)
    ASSERT_NEAR(a.final_params[i], b.final_params[i], 1e-5f);
  RealTrainConfig bad = flat;
  bad.ranks_per_node = 3;
  EXPECT_THROW(run_real_training(bad), std::invalid_argument);
}

TEST(RealTrainer, PhaseAccountingReconcilesWithStepTime) {
  // The five phase timers partition the loop body the step timer brackets:
  // their sum must reconcile with the measured wall step time. The slack
  // budget covers the untimed loss allreduce and timer overhead — the same
  // invariant the profiler's T001 check enforces on recorded traces at 5%.
  RealTrainConfig cfg;
  cfg.ranks = 2;
  cfg.batch_per_rank = 4;
  cfg.steps = 4;
  for (const auto& r : {run_real_training(cfg), run_real_training_single(cfg)}) {
    const double step = r.phases.step.mean();
    const double attributed = r.phases.input.mean() + r.phases.forward.mean() +
                              r.phases.backward.mean() + r.phases.exchange.mean() +
                              r.phases.optimizer.mean();
    ASSERT_GT(step, 0.0);
    EXPECT_EQ(r.phases.step.count(), static_cast<std::size_t>(cfg.steps));
    EXPECT_LE(attributed, step * 1.0001 + 1e-6);  // phases cannot exceed the step
    EXPECT_GE(attributed, step * 0.85 - 200e-6)
        << "unattributed step time: step " << step << " s vs phases " << attributed << " s";
  }
}

TEST(RealTrainer, RejectsBadConfig) {
  RealTrainConfig cfg;
  cfg.ranks = 0;
  EXPECT_THROW(run_real_training(cfg), std::invalid_argument);
  cfg = RealTrainConfig{};
  cfg.steps = 0;
  EXPECT_THROW(run_real_training_single(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace dnnperf::train
