#include <gtest/gtest.h>

#include <cmath>

#include "ref/network.hpp"
#include "ref/optimizers.hpp"

namespace dnnperf::ref {
namespace {

/// One scalar parameter with an externally controlled gradient.
struct Scalar {
  Tensor value = Tensor({1});
  Tensor grad = Tensor({1});
  std::vector<ParamRef> params() { return {{"w", &value, &grad}}; }
};

TEST(MomentumSgd, ZeroMomentumIsPlainSgd) {
  Scalar s;
  s.value[0] = 1.0f;
  s.grad[0] = 0.5f;
  MomentumSgd opt(0.1f, 0.0f);
  opt.step(s.params());
  EXPECT_NEAR(s.value[0], 1.0f - 0.1f * 0.5f, 1e-7f);
}

TEST(MomentumSgd, VelocityAccumulates) {
  Scalar s;
  s.value[0] = 0.0f;
  s.grad[0] = 1.0f;
  MomentumSgd opt(0.1f, 0.9f);
  // v1 = 1, p -= 0.1; v2 = 1.9, p -= 0.19.
  opt.step(s.params());
  EXPECT_NEAR(s.value[0], -0.1f, 1e-7f);
  opt.step(s.params());
  EXPECT_NEAR(s.value[0], -0.1f - 0.19f, 1e-6f);
}

TEST(MomentumSgd, RejectsBadHyperparameters) {
  EXPECT_THROW(MomentumSgd(0.0f, 0.9f), std::invalid_argument);
  EXPECT_THROW(MomentumSgd(0.1f, 1.0f), std::invalid_argument);
  EXPECT_THROW(MomentumSgd(0.1f, -0.1f), std::invalid_argument);
}

TEST(Adam, FirstStepIsSignedLearningRate) {
  // With bias correction, the first Adam step is ~ -lr * sign(g).
  Scalar s;
  s.value[0] = 0.0f;
  s.grad[0] = 3.7f;
  Adam opt(0.01f);
  opt.step(s.params());
  EXPECT_NEAR(s.value[0], -0.01f, 1e-4f);
  EXPECT_EQ(opt.steps_taken(), 1);
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize (w - 3)^2; gradient = 2(w - 3).
  Scalar s;
  s.value[0] = 0.0f;
  Adam opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    s.grad[0] = 2.0f * (s.value[0] - 3.0f);
    opt.step(s.params());
  }
  EXPECT_NEAR(s.value[0], 3.0f, 0.05f);
}

TEST(Adam, RejectsBadHyperparameters) {
  EXPECT_THROW(Adam(-0.1f), std::invalid_argument);
  EXPECT_THROW(Adam(0.1f, 1.0f), std::invalid_argument);
}

TEST(Optimizers, DetectShapeChanges) {
  Scalar s;
  MomentumSgd opt(0.1f, 0.9f);
  opt.step(s.params());
  Tensor bigger({2});
  Tensor bigger_grad({2});
  std::vector<ParamRef> changed{{"w", &bigger, &bigger_grad}};
  EXPECT_THROW(opt.step(changed), std::invalid_argument);
}

TEST(Optimizers, TrainTinyCnnWithMomentumAndAdam) {
  for (int which : {0, 1}) {
    ThreadPool pool(2);
    util::Rng rng(21);
    Network net = make_tiny_cnn(3, 8, 4, pool, rng);
    util::Rng data_rng(22);
    const auto batch = synthetic_batch(8, 3, 8, 4, data_rng);
    MomentumSgd momentum(0.05f, 0.9f);
    Adam adam(0.01f);
    const float first = net.train_step(batch.images, batch.labels);
    float last = first;
    for (int i = 0; i < 12; ++i) {
      last = net.train_step(batch.images, batch.labels);
      if (which == 0)
        momentum.step(net.params());
      else
        adam.step(net.params());
    }
    EXPECT_LT(last, first) << (which == 0 ? "momentum" : "adam");
  }
}

}  // namespace
}  // namespace dnnperf::ref
