// Property-based sweeps over the performance model: invariants that must
// hold for every (platform, model, configuration) combination, not just the
// paper's calibration points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/presets.hpp"
#include "exec/cpu_model.hpp"
#include "exec/placement.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"

namespace dnnperf {
namespace {

// ---------------------------------------------------------------------------
// Trainer-level properties over platform x model
// ---------------------------------------------------------------------------

using PlatModel = std::tuple<std::string, dnn::ModelId>;

class PlatModelParam : public ::testing::TestWithParam<PlatModel> {};

TEST_P(PlatModelParam, ThroughputPositiveAndFiniteEverywhere) {
  const auto& [cluster_name, model] = GetParam();
  const auto cluster = hw::cluster_by_name(cluster_name);
  for (int ppn : {1, 2, 4}) {
    train::TrainConfig cfg;
    cfg.cluster = cluster;
    cfg.model = model;
    cfg.ppn = ppn;
    cfg.batch_per_rank = 32;
    cfg.use_horovod = ppn > 1;
    const auto r = train::run_training(cfg);
    ASSERT_TRUE(std::isfinite(r.images_per_sec)) << cluster_name << " ppn " << ppn;
    ASSERT_GT(r.images_per_sec, 0.0);
    ASSERT_GT(r.fwd_s, 0.0);
    ASSERT_GT(r.bwd_s, r.fwd_s);  // backward always costs more than forward
  }
}

TEST_P(PlatModelParam, SpeedupNeverExceedsRankRatio) {
  const auto& [cluster_name, model] = GetParam();
  const auto cluster = hw::cluster_by_name(cluster_name);
  const int max_nodes = std::min(cluster.max_nodes, 8);
  auto cfg = core::tf_best(cluster, model, 1);
  const double single = train::run_training(cfg).images_per_sec;
  double prev = single;
  for (int nodes = 2; nodes <= max_nodes; nodes *= 2) {
    cfg.nodes = nodes;
    const double v = train::run_training(cfg).images_per_sec;
    ASSERT_GT(v, prev) << "more nodes must not reduce aggregate throughput";
    ASSERT_LE(v / single, nodes * 1.001) << "no superlinear scaling";
    prev = v;
  }
}

TEST_P(PlatModelParam, BiggerBatchNeverReducesThroughput) {
  const auto& [cluster_name, model] = GetParam();
  const auto cluster = hw::cluster_by_name(cluster_name);
  auto cfg = core::tf_best(cluster, model, 1);
  double prev = 0.0;
  for (int bs : {8, 16, 32, 64, 128}) {
    cfg.batch_per_rank = bs;
    const double v = train::run_training(cfg).images_per_sec;
    ASSERT_GE(v, prev * 0.999) << "bs " << bs;
    prev = v;
  }
}

std::string plat_model_name(const ::testing::TestParamInfo<PlatModel>& info) {
  std::string s = std::get<0>(info.param) + "_" + dnn::to_string(std::get<1>(info.param));
  std::erase_if(s, [](char c) { return c == '-'; });
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    CpuClustersByModels, PlatModelParam,
    ::testing::Combine(::testing::Values("RI2-Skylake", "Pitzer", "Stampede2", "RI2-Broadwell",
                                         "AMD-Cluster"),
                       ::testing::Values(dnn::ModelId::ResNet50, dnn::ModelId::InceptionV3,
                                         dnn::ModelId::GoogLeNet)),
    plat_model_name);

// ---------------------------------------------------------------------------
// Execution-model properties over every CPU platform
// ---------------------------------------------------------------------------

class CpuParam : public ::testing::TestWithParam<std::string> {};

TEST_P(CpuParam, PlacementInvariants) {
  const auto cpu = hw::cpu_by_label(GetParam());
  for (int ppn : {1, 2, 4}) {
    if (cpu.total_cores() % ppn != 0) continue;
    for (int threads : {1, 2, cpu.total_cores() / ppn}) {
      const auto p = exec::place_rank(cpu, ppn, threads);
      ASSERT_GE(p.cores, 1);
      ASSERT_LE(p.cores * ppn, cpu.total_cores());
      ASSERT_GE(p.numa_domains_spanned, 1);
      ASSERT_LE(p.numa_domains_spanned, cpu.numa_domains());
      ASSERT_GT(p.mem_bw_gbps, 0.0);
      ASSERT_LE(p.mem_bw_gbps, cpu.mem_bw_gbps() * 1.01);
      ASSERT_GE(p.numa_time_penalty, 0.0);
    }
  }
}

TEST_P(CpuParam, PinnedRanksBeatSpanningProcessPerCore) {
  // ppn = sockets (one rank per socket) must reach at least the throughput
  // of one process spanning everything, for any model: the MP insight must
  // be architecture-independent.
  const auto cpu = hw::cpu_by_label(GetParam());
  hw::ClusterModel cluster;
  cluster.name = "probe";
  cluster.node.cpu = cpu;
  cluster.max_nodes = 1;

  train::TrainConfig sp;
  sp.cluster = cluster;
  sp.model = dnn::ModelId::ResNet50;
  sp.ppn = 1;
  sp.use_horovod = false;
  sp.batch_per_rank = 128;

  train::TrainConfig mp = sp;
  mp.ppn = cpu.numa_domains();
  mp.use_horovod = true;
  mp.batch_per_rank = std::max(1, 128 / cpu.numa_domains());

  EXPECT_GE(train::run_training(mp).images_per_sec,
            train::run_training(sp).images_per_sec * 0.99)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(TableOne, CpuParam,
                         ::testing::Values("Skylake-1", "Skylake-2", "Skylake-3", "Broadwell",
                                           "EPYC"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           std::string s = param_info.param;
                           std::erase_if(s, [](char c) { return c == '-'; });
                           return s;
                         });

// ---------------------------------------------------------------------------
// Op-duration properties
// ---------------------------------------------------------------------------

TEST(OpDuration, MonotoneInWorkAndThreads) {
  const auto cpu = hw::stampede2().node.cpu;
  const exec::CpuExecModel model(cpu);
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet50);
  const exec::Placement p = exec::place_rank(cpu, 2, 24);
  exec::ExecConfig cfg;
  cfg.intra_threads = 12;
  cfg.inter_threads = 1;

  const auto& conv = g.op(1);  // stem conv
  ASSERT_EQ(conv.kind, dnn::OpKind::Conv2d);

  double prev = 1e18;
  for (double tau : {1.0, 2.0, 4.0, 8.0, 12.0}) {
    cfg.batch = 64;
    const double d = model.op_duration(g, conv, false, tau, 12, cfg, p, 1.0);
    ASSERT_LT(d, prev) << "more effective threads must shorten the op";
    prev = d;
  }

  double prev_batch = 0.0;
  for (int bs : {1, 8, 64, 256}) {
    cfg.batch = bs;
    const double d = model.op_duration(g, conv, false, 12.0, 12, cfg, p, 1.0);
    ASSERT_GT(d, prev_batch) << "more images must lengthen the op";
    prev_batch = d;
  }

  // Backward costs more than forward for a conv.
  cfg.batch = 64;
  EXPECT_GT(model.op_duration(g, conv, true, 12.0, 12, cfg, p, 1.0),
            model.op_duration(g, conv, false, 12.0, 12, cfg, p, 1.0));
}

}  // namespace
}  // namespace dnnperf
