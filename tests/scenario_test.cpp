// Tests for the fault-scenario engine (§6.10): the F-family lint goldens,
// scenario JSON parsing, the fault-driven per-rank DES (crash/rejoin
// membership, resync charges, throughput recovery), per-step jitter
// determinism, scenario-aware cache keying, and the advisor's survivability
// query — lint-gated, model-checked, and cached. The Survivability fixtures
// run under the tsan preset's test filter alongside the other service tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/analyze.hpp"
#include "core/advisor_service.hpp"
#include "core/eval_cache.hpp"
#include "core/presets.hpp"
#include "core/scenario.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/diag.hpp"

namespace {

using namespace dnnperf;

/// 2 nodes x 4 ranks of Skylake with a 40-step horizon: enough steps for the
/// canonical "crash at 10, rejoin at 30" schedule to fire and recover.
train::TrainConfig faultable_config() {
  train::TrainConfig cfg;
  cfg.cluster = hw::stampede2();
  cfg.nodes = 2;
  cfg.ppn = 4;
  cfg.batch_per_rank = 64;
  cfg.iterations = 40;
  return cfg;
}

core::Scenario crash_rejoin_scenario() {
  core::Scenario s;
  s.name = "crash-rejoin";
  s.faults.crashes.push_back({1, 10});
  s.faults.rejoins.push_back({1, 30});
  return s;
}

double mean(const std::vector<double>& v, std::size_t begin, std::size_t end) {
  return std::accumulate(v.begin() + static_cast<std::ptrdiff_t>(begin),
                         v.begin() + static_cast<std::ptrdiff_t>(end), 0.0) /
         static_cast<double>(end - begin);
}

// ---- F-family lint goldens -------------------------------------------------

TEST(ScenarioLint, NonexistentRankIsF001) {
  core::Scenario s;
  s.faults.crashes.push_back({99, 5});  // world is 8 ranks
  const util::Diagnostics diags = core::lint_scenario(s, faultable_config());
  ASSERT_TRUE(diags.has_code("F001")) << util::render_text(diags);
}

TEST(ScenarioLint, MalformedEventValuesAreF001) {
  core::Scenario s;
  s.faults.slowdowns.push_back({0, -1.5, 0, -1});  // negative factor
  s.faults.slowdowns.push_back({1, 1.5, 10, 10});  // empty range
  s.faults.crashes.push_back({2, -3});             // negative step
  const util::Diagnostics diags = core::lint_scenario(s, faultable_config());
  EXPECT_EQ(diags.count(util::Severity::Error), 3u) << util::render_text(diags);
  EXPECT_TRUE(diags.has_code("F001"));
}

TEST(ScenarioLint, RejoinBeforeCrashIsF002) {
  core::Scenario s;
  s.faults.rejoins.push_back({1, 5});  // no crash at all
  const util::Diagnostics diags = core::lint_scenario(s, faultable_config());
  ASSERT_TRUE(diags.has_code("F002")) << util::render_text(diags);

  core::Scenario same_step;
  same_step.faults.crashes.push_back({1, 5});
  same_step.faults.rejoins.push_back({1, 5});  // not strictly later
  EXPECT_TRUE(core::lint_scenario(same_step, faultable_config()).has_code("F002"));

  // The valid ordering is clean.
  EXPECT_TRUE(core::lint_scenario(crash_rejoin_scenario(), faultable_config()).empty());
}

TEST(ScenarioLint, ExceededFaultBudgetIsF003) {
  core::Scenario s;
  s.faults.fault_budget = 1;
  s.faults.crashes.push_back({1, 5});
  s.faults.crashes.push_back({2, 6});
  const util::Diagnostics diags = core::lint_scenario(s, faultable_config());
  ASSERT_TRUE(diags.has_code("F003")) << util::render_text(diags);
}

TEST(ScenarioLint, NobodyAliveIsF003) {
  train::TrainConfig cfg = faultable_config();
  cfg.nodes = 1;
  cfg.ppn = 2;
  core::Scenario s;
  s.faults.crashes.push_back({0, 5});
  s.faults.crashes.push_back({1, 6});
  const util::Diagnostics diags = core::lint_scenario(s, cfg);
  ASSERT_TRUE(diags.has_code("F003")) << util::render_text(diags);
}

TEST(ScenarioLint, DegradedLinkAbsentFromTopologyIsF004) {
  core::Scenario s;
  s.link_degrades.push_back({0, 0.5, 1.0});  // inter-node
  train::TrainConfig single_node = faultable_config();
  single_node.nodes = 1;
  EXPECT_TRUE(core::lint_scenario(s, single_node).has_code("F004"));
  // The same degrade on a 2-node run names a real link.
  EXPECT_TRUE(core::lint_scenario(s, faultable_config()).empty());

  core::Scenario numa;
  numa.link_degrades.push_back({2, 0.5, 1.0});  // intra-NUMA without the stage
  EXPECT_TRUE(core::lint_scenario(numa, faultable_config()).has_code("F004"));
  train::TrainConfig three_level = faultable_config();
  three_level.hierarchy = train::CommHierarchy::ThreeLevel;  // SKX: 2 domains, ppn 4
  EXPECT_TRUE(core::lint_scenario(numa, three_level).empty());

  core::Scenario bad_factor;
  bad_factor.link_degrades.push_back({0, -0.5, 1.0});
  EXPECT_TRUE(core::lint_scenario(bad_factor, faultable_config()).has_code("F004"));
}

TEST(ScenarioLint, FCodesRunInsideTheCompositeConfigLint) {
  // The Experiment gate sees scenario errors: a config carrying a bad
  // schedule fails lint_config, not just the standalone scenario lint.
  train::TrainConfig cfg =
      core::apply_scenario(crash_rejoin_scenario(), faultable_config());
  cfg.faults.crashes.front().rank = 99;
  EXPECT_TRUE(analysis::lint_config(cfg).has_code("F001"));
}

// ---- scenario JSON ---------------------------------------------------------

TEST(ScenarioJson, ParsesTheFullDocument) {
  const core::Scenario s = core::parse_scenario_text(R"({
    "name": "degraded-crash",
    "fault_budget": 3,
    "slowdowns": [{"rank": 3, "factor": 1.5, "from_step": 0, "to_step": 20}],
    "crashes":   [{"rank": 1, "step": 10}],
    "rejoins":   [{"rank": 1, "step": 30}],
    "link_degrades": [{"level": 0, "bandwidth_factor": 0.5, "latency_factor": 2.0}]
  })");
  EXPECT_EQ(s.name, "degraded-crash");
  EXPECT_EQ(s.faults.fault_budget, 3);
  ASSERT_EQ(s.faults.slowdowns.size(), 1u);
  EXPECT_EQ(s.faults.slowdowns[0].rank, 3);
  EXPECT_DOUBLE_EQ(s.faults.slowdowns[0].factor, 1.5);
  EXPECT_EQ(s.faults.slowdowns[0].to_step, 20);
  ASSERT_EQ(s.faults.crashes.size(), 1u);
  EXPECT_EQ(s.faults.crashes[0].rank, 1);
  EXPECT_EQ(s.faults.crashes[0].step, 10);
  ASSERT_EQ(s.faults.rejoins.size(), 1u);
  EXPECT_EQ(s.faults.rejoins[0].step, 30);
  ASSERT_EQ(s.link_degrades.size(), 1u);
  EXPECT_DOUBLE_EQ(s.link_degrades[0].bandwidth_factor, 0.5);
  EXPECT_DOUBLE_EQ(s.link_degrades[0].latency_factor, 2.0);
}

TEST(ScenarioJson, DefaultsAndErrors) {
  const core::Scenario minimal = core::parse_scenario_text(R"({"name": "m"})");
  EXPECT_EQ(minimal.name, "m");
  EXPECT_TRUE(minimal.empty());

  EXPECT_THROW(core::parse_scenario_text("[1, 2]"), std::runtime_error);
  EXPECT_THROW(core::parse_scenario_text(R"({"crashes": [{"rank": 1}]})"),
               std::runtime_error);  // missing step
  EXPECT_THROW(core::parse_scenario_text(R"({"crashes": [{"rank": 1.5, "step": 0}]})"),
               std::runtime_error);  // non-integer rank
  EXPECT_THROW(core::parse_scenario_text(R"({"crashes": {}})"), std::runtime_error);
  EXPECT_THROW(core::load_scenario_file("/nonexistent/scenario.json"), std::runtime_error);
}

TEST(ScenarioJson, ApplyForcesPerRankSimulation) {
  const train::TrainConfig base = faultable_config();
  EXPECT_FALSE(base.per_rank_sim);
  const train::TrainConfig cfg = core::apply_scenario(crash_rejoin_scenario(), base);
  EXPECT_TRUE(cfg.per_rank_sim);
  EXPECT_EQ(cfg.faults.crashes.size(), 1u);
  // An empty scenario changes nothing.
  const train::TrainConfig same = core::apply_scenario(core::Scenario{}, base);
  EXPECT_FALSE(same.per_rank_sim);
}

// ---- fault-driven DES ------------------------------------------------------

TEST(ScenarioTraining, CrashRegrowAt64RanksRecoversThroughput) {
  // 16 nodes x 4 ranks; rank 7 dies at step 10 and regrows at step 30. The
  // run must show the shrink (longer steps on fewer ranks are *not* expected
  // — fewer ranks mean the same per-step work but resync spikes at both
  // membership changes) and full recovery after the rejoin.
  train::TrainConfig cfg = faultable_config();
  cfg.nodes = 16;
  cfg.jitter_cv = 0.0;  // deterministic steps isolate the resync charges
  cfg.faults.crashes.push_back({7, 10});
  cfg.faults.rejoins.push_back({7, 30});
  const train::TrainResult r = train::run_training(cfg);

  EXPECT_EQ(r.sim_ranks, 64);
  EXPECT_EQ(r.membership_changes, 2u);
  ASSERT_EQ(r.iteration_seconds.size(), 40u);

  // Alive fraction: 63/64 of the world for 20 of 40 steps.
  EXPECT_NEAR(r.alive_rank_fraction, (20.0 * 64 + 20.0 * 63) / (40.0 * 64), 1e-9);

  // Both membership changes charge a resync (ring re-form + full-tensor-list
  // negotiation): those steps run strictly longer than their neighbors.
  EXPECT_GT(r.iteration_seconds[10], r.iteration_seconds[9]);
  EXPECT_GT(r.iteration_seconds[30], r.iteration_seconds[29]);

  // Throughput recovers: with jitter off, post-rejoin steps match the
  // pre-crash baseline exactly.
  const double before = mean(r.iteration_seconds, 2, 10);
  const double after = mean(r.iteration_seconds, 32, 40);
  EXPECT_NEAR(after, before, 1e-9 * before);

  // And the faulted run's aggregate throughput is below the healthy run's.
  train::TrainConfig healthy = cfg;
  healthy.faults = hvd::FaultSchedule{};
  healthy.per_rank_sim = true;
  const train::TrainResult h = train::run_training(healthy);
  EXPECT_LT(r.images_per_sec, h.images_per_sec);
  EXPECT_DOUBLE_EQ(h.alive_rank_fraction, 1.0);
}

TEST(ScenarioTraining, SlowdownStretchesOnlyTheScheduledWindow) {
  train::TrainConfig cfg = faultable_config();
  cfg.jitter_cv = 0.0;
  cfg.faults.slowdowns.push_back({0, 2.0, 10, 20});
  const train::TrainResult r = train::run_training(cfg);
  ASSERT_EQ(r.iteration_seconds.size(), 40u);
  // Synchronous SGD runs at the slowest rank's pace inside the window.
  EXPECT_GT(mean(r.iteration_seconds, 10, 20), 1.3 * mean(r.iteration_seconds, 0, 10));
  // Outside the window the pace is unchanged.
  EXPECT_NEAR(mean(r.iteration_seconds, 25, 40), mean(r.iteration_seconds, 0, 10),
              1e-9 * mean(r.iteration_seconds, 0, 10));
}

TEST(ScenarioTraining, FaultsRequireMultiRankHorovod) {
  train::TrainConfig cfg = faultable_config();
  cfg.nodes = 1;
  cfg.ppn = 1;
  cfg.use_horovod = false;
  cfg.faults.crashes.push_back({0, 1});
  EXPECT_THROW(train::run_training(cfg), std::invalid_argument);
}

TEST(ScenarioTraining, PerStepJitterIsDeterministicAcrossRuns) {
  train::TrainConfig cfg = faultable_config();
  cfg.per_rank_sim = true;
  cfg.jitter_cv = 0.05;
  const train::TrainResult a = train::run_training(cfg);
  const train::TrainResult b = train::run_training(cfg);
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i)
    EXPECT_DOUBLE_EQ(a.iteration_seconds[i], b.iteration_seconds[i]) << i;
  // The per-step reseed draws fresh jitter each iteration: steps differ from
  // one another (a run-constant draw would repeat the same value 40 times).
  const auto [lo, hi] =
      std::minmax_element(a.iteration_seconds.begin(), a.iteration_seconds.end());
  EXPECT_GT(*hi - *lo, 1e-9);
}

// ---- cache keying ----------------------------------------------------------

TEST(EvalCacheScenario, ScheduleIsContentHashedIntoTheConfigKey) {
  const train::TrainConfig healthy = faultable_config();
  const train::TrainConfig faulted =
      core::apply_scenario(crash_rejoin_scenario(), healthy);
  // per_rank_sim alone already splits the keys; isolate the schedule hash by
  // comparing two per-rank configs.
  train::TrainConfig per_rank_healthy = healthy;
  per_rank_healthy.per_rank_sim = true;
  EXPECT_NE(core::config_key(per_rank_healthy), core::config_key(faulted));
  EXPECT_NE(core::config_key(healthy), core::config_key(faulted));

  // Every schedule knob feeds the hash: moving one step, adding a degrade,
  // or changing the budget (it changes the memoized lint verdict) re-keys.
  train::TrainConfig moved = faulted;
  moved.faults.crashes.front().step = 11;
  EXPECT_NE(core::config_key(faulted), core::config_key(moved));
  train::TrainConfig budget = faulted;
  budget.faults.fault_budget += 1;
  EXPECT_NE(core::config_key(faulted), core::config_key(budget));
  train::TrainConfig degraded = faulted;
  degraded.link_degrades.push_back({0, 0.5, 1.0});
  EXPECT_NE(core::config_key(faulted), core::config_key(degraded));
}

// ---- survivability query ---------------------------------------------------

TEST(Survivability, CrashRejoinQueryReturnsRetentionAndCaches) {
  // The acceptance scenario: "1 rank crashes at step 10 and rejoins at step
  // 30" answered as a lint-gated, model-checked, cached reply.
  core::AdvisorServiceOptions opts;
  opts.threads = 2;
  core::AdvisorService service(opts);
  core::SurvivabilityRequest req{faultable_config(), crash_rejoin_scenario()};

  const core::SurvivabilityReply cold = service.survivability(req);
  EXPECT_GT(cold.healthy_images_per_sec, 0.0);
  EXPECT_GT(cold.scenario_images_per_sec, 0.0);
  EXPECT_GT(cold.throughput_retention, 0.0);
  EXPECT_LT(cold.throughput_retention, 1.0);  // the fault costs something
  EXPECT_LT(cold.alive_rank_fraction, 1.0);
  EXPECT_GT(cold.alive_rank_fraction, 0.8);  // 7/8 ranks for half the run
  EXPECT_EQ(cold.membership_changes, 2u);
  EXPECT_EQ(cold.iteration_seconds.size(), 40u);
  EXPECT_EQ(cold.evaluated, 2u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_FALSE(cold.verdict_reason.empty());

  // Warm repeat: both measurements served from the cache, same figures.
  const core::SurvivabilityReply warm = service.survivability(req);
  EXPECT_EQ(warm.evaluated, 0u);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_DOUBLE_EQ(warm.throughput_retention, cold.throughput_retention);
  EXPECT_DOUBLE_EQ(warm.healthy_images_per_sec, cold.healthy_images_per_sec);
}

TEST(Survivability, MalformedScenarioFailsTheLintGate) {
  core::AdvisorService service;
  core::SurvivabilityRequest req{faultable_config(), crash_rejoin_scenario()};
  req.scenario.faults.crashes.front().rank = 99;  // F001
  EXPECT_THROW(service.survivability(req), std::invalid_argument);
}

TEST(Survivability, EmptyScenarioRetainsEverything) {
  core::AdvisorService service;
  core::SurvivabilityRequest req{faultable_config(), core::Scenario{}};
  const core::SurvivabilityReply reply = service.survivability(req);
  EXPECT_DOUBLE_EQ(reply.throughput_retention, 1.0);
  EXPECT_DOUBLE_EQ(reply.alive_rank_fraction, 1.0);
  EXPECT_EQ(reply.evaluated, 1u);  // both sides alias one config
}

TEST(Survivability, ConcurrentQueriesAgree) {
  // tsan coverage: survivability shares the cache, lint memo, and pool with
  // ask(); concurrent identical queries must agree bit-for-bit.
  core::AdvisorServiceOptions opts;
  opts.threads = 2;
  core::AdvisorService service(opts);
  const core::SurvivabilityRequest req{faultable_config(), crash_rejoin_scenario()};
  std::vector<core::SurvivabilityReply> replies(4);
  std::vector<std::thread> workers;
  for (auto& reply : replies)
    workers.emplace_back([&service, &req, &reply] { reply = service.survivability(req); });
  for (auto& w : workers) w.join();
  for (const auto& reply : replies) {
    EXPECT_DOUBLE_EQ(reply.throughput_retention, replies.front().throughput_retention);
    EXPECT_DOUBLE_EQ(reply.healthy_images_per_sec, replies.front().healthy_images_per_sec);
  }
}

}  // namespace
