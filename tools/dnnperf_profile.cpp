// dnnperf_profile: trace analytics over recorded Chrome trace-event
// documents (util/trace) — the "where did the step time go" CLI. Ingests a
// real rank-track trace or a DES virtual-time trace, reconstructs per-rank
// phase timelines, and reports per-rank utilization, compute-communication
// overlap, the critical path through a step, straggler attribution,
// allreduce efficiency against the collective cost model, and one
// bottleneck verdict (ComputeBound|CommBound|StragglerBound|InputBound).
//
//   dnnperf_profile train.trace.json                       # text report
//   dnnperf_profile --trace=t.json --format=json           # dnnperf-profile-v1
//   dnnperf_profile t.json --compare-sim                   # + DES alignment
//   dnnperf_profile t.json --cluster=Stampede2 --ppn=48
//
// --compare-sim feeds the measured phase times and gradient-arrival events
// back into the DES timeline and reports per-phase predicted-vs-measured
// relative error (the paper's model-validation loop). Exit code is 1 only
// on Error-severity findings (unparseable/unprofilable trace); Warn/Advice
// findings are reported in the output and exit 0.
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "hw/platforms.hpp"
#include "mpi/cost.hpp"
#include "net/link.hpp"
#include "net/topology.hpp"
#include "prof/compare.hpp"
#include "prof/profile.hpp"
#include "prof/trace_model.hpp"
#include "util/cli.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"

int main(int argc, char** argv) {
  using namespace dnnperf;
  util::CliParser cli("dnnperf_profile",
                      "trace analytics: utilization, overlap, critical path, straggler "
                      "attribution, bottleneck verdict\n"
                      "  usage: dnnperf_profile <trace.json> [--compare-sim] [--format=text|json]");
  cli.add_string("trace", "trace file (alternative to the positional argument)", "");
  cli.add_flag("compare-sim", "re-run the DES with the measured inputs and report "
               "per-phase predicted-vs-measured error", false);
  cli.add_string("cluster", "cluster preset naming the collective cost model", "RI2-Skylake");
  cli.add_int("nodes", "nodes behind the trace (0 = assume 1)", 0);
  cli.add_int("ppn", "ranks per node (0 = all traced ranks on one node)", 0);
  cli.add_string("format", "report format: text|json", "text");
  cli.add_string("out", "write the report here instead of stdout", "");
  cli.add_string("metrics-out", "publish prof_* gauges and write a metrics snapshot here", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    std::string path = cli.get_string("trace");
    if (path.empty() && !cli.positional().empty()) path = cli.positional().front();
    if (path.empty()) throw std::invalid_argument("no trace file given (--trace or positional)");
    const std::string format = cli.get_string("format");
    if (format != "text" && format != "json")
      throw std::invalid_argument("--format must be text|json");
    const std::string metrics_out = cli.get_string("metrics-out");

    util::Diagnostics parse_diags;
    const prof::TraceModel model = prof::parse_trace_file(path, parse_diags);
    if (parse_diags.has_errors()) {
      std::cerr << util::render_text(parse_diags);
      return 1;
    }

    // Rank geometry: explicit flags win; otherwise every traced rank shares
    // one node (the in-process recording layout).
    int ranks = 0;
    for (const prof::Track& t : model.tracks) ranks += t.rank() >= 0 ? 1 : 0;
    ranks = std::max(1, ranks);
    const int nodes = cli.get_int("nodes") > 0 ? static_cast<int>(cli.get_int("nodes")) : 1;
    const int ppn = cli.get_int("ppn") > 0 ? static_cast<int>(cli.get_int("ppn"))
                                           : std::max(1, ranks / nodes);

    const hw::ClusterModel cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const net::Topology topology(nodes, ppn, cluster.fabric, net::shared_memory_params());
    const mpi::CollectiveCostModel cost(topology);
    const hvd::FusionPolicy policy;

    prof::ProfileOptions options;
    options.cost = &cost;
    options.policy = &policy;
    const prof::ProfileReport report = prof::profile_trace(model, path, options);

    std::optional<prof::CompareReport> compare;
    if (cli.get_flag("compare-sim") && !report.diags.has_errors())
      compare = prof::compare_with_sim(report, policy, nodes * ppn > 1 ? &cost : nullptr);

    std::string rendered;
    if (format == "text") {
      rendered = prof::to_text(report);
      if (compare) rendered += "\n" + prof::to_text(*compare);
    } else {
      rendered = prof::to_json(report);
      if (compare) {
        rendered.pop_back();  // strip the envelope's closing brace
        rendered += ",\"compare_sim\":" + prof::to_json(*compare) + "}";
      }
      rendered += "\n";
    }
    const std::string out_path = cli.get_string("out");
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot open " + out_path);
      out << rendered;
      std::cout << "wrote profile report to " << out_path << "\n";
    }

    if (!metrics_out.empty()) {
      // Enabled only now: the compare-sim DES run above must not leak its
      // machine-dependent hvd_* samples into the exported snapshot.
      util::metrics::set_enabled(true);
      prof::publish_metrics(report);
      util::metrics::Snapshot snap = util::metrics::snapshot();
      snap.label = "dnnperf_profile " + path;
      util::metrics::write_json_file(snap, metrics_out);
      std::cout << "wrote " << snap.metrics.size() << " metrics to " << metrics_out << "\n";
    }
    return report.diags.has_errors() ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
