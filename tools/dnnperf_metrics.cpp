// dnnperf_metrics: validate, convert, and regression-diff metrics snapshots
// (the dnnperf-metrics-v1 JSON that --metrics-out and Experiment scorecards
// emit). This is the bench-trajectory gate: CI diffs a fresh snapshot
// against the committed BENCH_metrics.json baseline and fails on regression.
//
//   dnnperf_metrics check snapshot.json            # schema + lint (M001/M002)
//   dnnperf_metrics diff base.json current.json    # exit 1 on regression
//   dnnperf_metrics convert snapshot.json --format=prometheus
//   dnnperf_metrics merge a.json b.json ... --bench-out=base.json
//
// Diff semantics (see util::metrics::DiffThresholds): histograms are
// duration-like — p50 inflated past --timer-rel fails; counters are exact
// accounting — any drift past --counter-rel in either direction fails;
// gauges named *_per_sec/*_gflops are rates — a drop past --rate-rel fails.
// Wall-clock families can be switched off for machine-independent CI gating
// with --timers=ignore / --rates=ignore while counters stay strict.
//
// --bench-out=FILE rewrites the checked/current/merged snapshot to FILE
// (canonical formatting), seeding or refreshing the committed baseline.
//
// merge folds several snapshots into one (counters sum, histograms
// bucket-merge, gauges take the max, one-sided metrics kept) — the committed
// baseline spans multiple smoke binaries (real_training + advisor_load), and
// a per-binary diff against a multi-binary baseline would flag every metric
// the other binary owns as "only in base".
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/analyze.hpp"
#include "util/cli.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"

namespace {

using namespace dnnperf;
namespace metrics = util::metrics;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

metrics::Snapshot load(const std::string& path) { return metrics::parse_json(read_file(path)); }

/// Parses a per-family switch: "fail" -> true, "ignore" -> false.
bool family_checked(const std::string& flag, const std::string& value) {
  if (value == "fail") return true;
  if (value == "ignore") return false;
  throw std::invalid_argument("--" + flag + " must be 'fail' or 'ignore', got '" + value + "'");
}

int check(const metrics::Snapshot& snap, const std::string& path) {
  const util::Diagnostics diags = analysis::lint_metrics(snap, path);
  if (!diags.empty()) std::cout << util::render_text(diags);
  std::cout << path << ": " << snap.metrics.size() << " metrics, schema dnnperf-metrics-v1, "
            << (diags.has_errors() ? "INVALID" : "ok") << "\n";
  return diags.has_errors() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("dnnperf_metrics",
                      "validate, convert, and regression-diff dnnperf metrics snapshots\n"
                      "  commands: check <snap.json> | diff <base.json> <current.json> | "
                      "convert <snap.json> | merge <snap.json>...");
  cli.add_string("label", "label for the merged snapshot (merge command)", "");
  cli.add_flag("check", "alias for the 'check' command", false);
  cli.add_string("format", "convert output format: json|prometheus|csv", "prometheus");
  cli.add_double("timer-rel", "histogram regression threshold: p50 inflation fraction", 0.10);
  cli.add_double("counter-rel", "counter drift tolerance fraction (0 = exact)", 0.0);
  cli.add_double("rate-rel", "rate-gauge drop threshold fraction", 0.10);
  cli.add_string("timers", "histogram family: fail|ignore", "fail");
  cli.add_string("counters", "counter family: fail|ignore", "fail");
  cli.add_string("rates", "rate-gauge family: fail|ignore", "fail");
  cli.add_string("bench-out", "also write the checked/current snapshot to this path", "");

  try {
    if (!cli.parse(argc, argv)) return 0;

    std::vector<std::string> args = cli.positional();
    std::string command = cli.get_flag("check") ? "check" : "";
    if (command.empty()) {
      if (args.empty()) {
        std::cerr << cli.usage();
        return 2;
      }
      command = args.front();
      args.erase(args.begin());
    }

    if (command == "check") {
      if (args.size() != 1)
        throw std::invalid_argument("check needs exactly one snapshot file");
      const metrics::Snapshot snap = load(args[0]);
      const int status = check(snap, args[0]);
      if (const std::string& out = cli.get_string("bench-out"); !out.empty() && status == 0) {
        metrics::write_json_file(snap, out);
        std::cout << "wrote " << out << "\n";
      }
      return status;
    }

    if (command == "diff") {
      if (args.size() != 2)
        throw std::invalid_argument("diff needs exactly two snapshot files: base current");
      const metrics::Snapshot base = load(args[0]);
      const metrics::Snapshot current = load(args[1]);
      metrics::DiffThresholds th;
      th.timer_rel = cli.get_double("timer-rel");
      th.counter_rel = cli.get_double("counter-rel");
      th.rate_rel = cli.get_double("rate-rel");
      th.check_timers = family_checked("timers", cli.get_string("timers"));
      th.check_counters = family_checked("counters", cli.get_string("counters"));
      th.check_rates = family_checked("rates", cli.get_string("rates"));
      const metrics::DiffResult result = metrics::diff_snapshots(base, current, th);
      std::cout << result.render();
      if (const std::string& out = cli.get_string("bench-out"); !out.empty()) {
        metrics::write_json_file(current, out);
        std::cout << "wrote " << out << "\n";
      }
      return result.regression() ? 1 : 0;
    }

    if (command == "convert") {
      if (args.size() != 1)
        throw std::invalid_argument("convert needs exactly one snapshot file");
      const metrics::Snapshot snap = load(args[0]);
      const std::string& format = cli.get_string("format");
      if (format == "json")
        std::cout << metrics::to_json(snap);
      else if (format == "prometheus")
        std::cout << metrics::to_prometheus(snap);
      else if (format == "csv")
        std::cout << metrics::to_csv(snap);
      else
        throw std::invalid_argument("unknown --format '" + format +
                                    "' (want json|prometheus|csv)");
      return 0;
    }

    if (command == "merge") {
      if (args.empty())
        throw std::invalid_argument("merge needs at least one snapshot file");
      metrics::Snapshot merged = load(args[0]);
      for (std::size_t i = 1; i < args.size(); ++i) merged.merge(load(args[i]));
      if (const std::string& label = cli.get_string("label"); !label.empty())
        merged.label = label;
      else if (args.size() > 1)
        merged.label = "merge of " + std::to_string(args.size()) + " snapshots";
      const int status = check(merged, "merge(" + std::to_string(args.size()) + " files)");
      if (const std::string& out = cli.get_string("bench-out"); !out.empty() && status == 0) {
        metrics::write_json_file(merged, out);
        std::cout << "wrote " << out << "\n";
      }
      if (cli.get_string("bench-out").empty()) std::cout << metrics::to_json(merged);
      return status;
    }

    throw std::invalid_argument("unknown command '" + command +
                                "' (want check|diff|convert|merge)");
  } catch (const std::exception& e) {
    std::cerr << "dnnperf_metrics: " << e.what() << "\n";
    return 2;
  }
}
