// dnnperf_lint: static analysis over everything the repo ships — model
// graphs, CPU/GPU platforms, cluster topologies, and the tuned training
// presets — plus any single model/cluster/config named on the command line.
//
//   dnnperf_lint                         # lint all shipped models + presets
//   dnnperf_lint --model=resnet50        # one model's graph
//   dnnperf_lint --cluster=Stampede2 --model=resnet50 --nodes=8   # one config
//   dnnperf_lint --lint-json             # machine-readable output for CI
//   dnnperf_lint --list-passes           # the pass registry
//   dnnperf_lint --verify-engine         # model-check presets' engine protocol
//   dnnperf_lint --verify-elastic        # model-check crash/rejoin handling (V2xx)
//   dnnperf_lint --verify-trace=t.json   # happens-before checks on a trace
//   dnnperf_lint --scenario=s.json --cluster=C --model=M
//                                        # lint a fault scenario and price its
//                                        # survivability (throughput retention)
//   dnnperf_lint --optimize              # run the verified graph optimizer
//                                        # over every shipped model (O0xx)
//
// Exit status: 0 when no Error-level findings, 1 otherwise (Warn/Advice do
// not affect the exit code; --strict promotes Warn to failing).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyze.hpp"
#include "analysis/registry.hpp"
#include "analysis/verify/trace_verifier.hpp"
#include "core/advisor_service.hpp"
#include "core/presets.hpp"
#include "core/scenario.hpp"
#include "dnn/models.hpp"
#include "hw/platforms.hpp"
#include "opt/passes.hpp"
#include "util/cli.hpp"
#include "util/diag.hpp"
#include "util/table.hpp"

namespace {

using namespace dnnperf;

void list_passes() {
  util::TextTable table({"code", "severity", "family", "invariant"});
  for (const auto& info : analysis::pass_registry())
    table.add_row({info.code, util::to_string(info.severity), info.family, info.summary});
  std::cout << table.to_text();
}

/// The tuned configurations the figures start from: TF-best, PyTorch-best,
/// and the SP baseline on every CPU cluster for every paper model, plus a
/// GPU config per GPU cluster.
std::vector<train::TrainConfig> shipped_presets() {
  std::vector<train::TrainConfig> configs;
  for (const auto& cluster : hw::all_clusters()) {
    if (cluster.node.has_gpu()) {
      configs.push_back(core::gpu_config(cluster, dnn::ModelId::ResNet50,
                                         exec::Framework::TensorFlow, 1,
                                         cluster.node.gpu->devices_per_node, 32));
      continue;
    }
    const int nodes = std::min(2, cluster.max_nodes);
    for (dnn::ModelId model : dnn::paper_models()) {
      configs.push_back(core::tf_best(cluster, model, nodes));
      configs.push_back(core::pytorch_best(cluster, model, nodes));
      configs.push_back(core::sp_baseline(cluster, model, 32));
    }
  }
  return configs;
}

/// --optimize: run every enabled rewrite pass over the selected models at
/// the requested level, print each model's RewriteLog summary, and merge the
/// equivalence checker's O-codes into the findings. A clean run proves every
/// shipped graph optimizes soundly.
void run_optimizer(const std::vector<dnn::ModelId>& models, int level,
                   util::Diagnostics& all, bool quiet) {
  util::TextTable table({"model", "ops before", "ops after", "rewrites", "d.params",
                         "d.fwd GFLOP", "d.act MiB"});
  for (const dnn::ModelId id : models) {
    const dnn::Graph graph = dnn::build_model(id);
    opt::OptOptions oo;
    oo.level = level;
    const opt::OptResult result = opt::optimize(graph, oo);
    all.merge(result.diags);
    table.add_row({graph.name(), std::to_string(result.log.ops_before),
                   std::to_string(result.log.ops_after),
                   std::to_string(result.log.rewrites.size()),
                   std::to_string(static_cast<long long>(result.log.d_params())),
                   std::to_string(result.log.d_fwd_flops() / 1e9),
                   std::to_string(result.log.d_activation_bytes() / (1024.0 * 1024.0))});
  }
  if (!quiet) std::cout << table.to_text();
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("dnnperf_lint",
                      "static analysis of model graphs, platforms, topologies, and "
                      "training configurations");
  cli.add_string("model", "lint one model by name (e.g. resnet50); empty = all", "");
  cli.add_string("cluster", "lint one cluster by name (e.g. Stampede2); empty = all", "");
  cli.add_int("nodes", "nodes for a --cluster+--model config lint", 1);
  cli.add_int("ppn", "ppn override for the config lint (0 = tuned preset)", 0);
  cli.add_int("batch", "per-rank batch for the config lint (0 = tuned preset)", 0);
  cli.add_flag("presets", "lint the shipped tuned presets", true);
  cli.add_flag("models", "lint every shipped model graph", true);
  cli.add_flag("platforms", "lint every shipped CPU/GPU/cluster", true);
  cli.add_flag("lint-json", "emit diagnostics as JSON (for CI)", false);
  cli.add_flag("json", "alias for --lint-json", false);
  cli.add_string("format", "output renderer: text, json, or github", "");
  cli.add_flag("strict", "exit nonzero on Warn findings too", false);
  cli.add_flag("list-passes", "print the pass registry and exit", false);
  cli.add_flag("optimize",
               "run the verified graph optimizer over the selected models and report "
               "the equivalence checker's findings (O0xx)",
               false);
  cli.add_int("opt-level", "optimizer level for --optimize (1-2)", 2);
  cli.add_flag("verify-engine",
               "model-check the engine protocol for the selected configs (V0xx)", false);
  cli.add_flag("verify-elastic",
               "model-check the elastic protocol with crash/rejoin interleavings for the "
               "selected configs (V2xx)",
               false);
  cli.add_string("verify-trace",
                 "run happens-before checks over a recorded Chrome-trace file (V1xx)", "");
  cli.add_string("scenario",
                 "fault-scenario JSON to lint and price against --cluster+--model "
                 "(prints the survivability report)",
                 "");
  cli.add_flag("check",
               "with --scenario: fail unless the survivability reply is sane "
               "(healthy throughput > 0, retention in (0, 1])",
               false);
  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << cli.usage();
    return 2;
  }

  if (cli.get_flag("list-passes")) {
    list_passes();
    return 0;
  }

  std::string format = cli.get_string("format");
  if (format.empty()) format = cli.get_flag("lint-json") || cli.get_flag("json") ? "json" : "text";
  if (format != "text" && format != "json" && format != "github") {
    std::cerr << "dnnperf_lint: unknown --format '" << format << "' (text|json|github)\n";
    return 2;
  }

  const bool verify_engine = cli.get_flag("verify-engine");
  const bool verify_elastic = cli.get_flag("verify-elastic");
  const std::string trace_path = cli.get_string("verify-trace");
  const std::string scenario_path = cli.get_string("scenario");

  util::Diagnostics all;
  try {
    const std::string model_arg = cli.get_string("model");
    const std::string cluster_arg = cli.get_string("cluster");

    if (cli.get_flag("optimize")) {
      const int level = static_cast<int>(cli.get_int("opt-level"));
      if (level < 1 || level > 2) {
        std::cerr << "dnnperf_lint: --opt-level must be 1 or 2\n";
        return 2;
      }
      const std::vector<dnn::ModelId> models =
          model_arg.empty() ? dnn::all_models()
                            : std::vector<dnn::ModelId>{dnn::model_by_name(model_arg)};
      // Summary table only in text mode; json/github stay machine-parseable.
      run_optimizer(models, level, all, format != "text");
    } else if (!scenario_path.empty()) {
      // Scenario mode: lint the schedule against the named config, then (when
      // the lint passes) price its survivability through the advisor — a
      // lint-gated, model-checked, cached reply.
      if (model_arg.empty() || cluster_arg.empty()) {
        std::cerr << "dnnperf_lint: --scenario requires --cluster and --model\n";
        return 2;
      }
      const core::Scenario scenario = core::load_scenario_file(scenario_path);
      const auto cluster = hw::cluster_by_name(cluster_arg);
      train::TrainConfig cfg =
          core::tf_best(cluster, dnn::model_by_name(model_arg),
                        static_cast<int>(cli.get_int("nodes")));
      if (cli.get_int("ppn") > 0) cfg.ppn = static_cast<int>(cli.get_int("ppn"));
      if (cli.get_int("batch") > 0) cfg.batch_per_rank = static_cast<int>(cli.get_int("batch"));
      // Extend the horizon so every scheduled event actually fires and the
      // run has post-recovery iterations to measure.
      int horizon = 0;
      for (const auto& c : scenario.faults.crashes) horizon = std::max(horizon, c.step + 1);
      for (const auto& r : scenario.faults.rejoins) horizon = std::max(horizon, r.step + 1);
      for (const auto& s : scenario.faults.slowdowns)
        horizon = std::max(horizon, std::max(s.from_step, s.to_step) + 1);
      cfg.iterations = std::max(cfg.iterations, horizon + 10);

      all.merge(core::lint_scenario(scenario, cfg));
      if (!all.has_errors()) {
        const core::SurvivabilityReply reply =
            core::default_advisor_service().survivability({cfg, scenario});
        if (format == "text") {
          util::TextTable table({"scenario", "healthy img/s", "scenario img/s", "retention",
                                 "alive frac", "reshapes", "warm", "evaluated"});
          table.add_row({scenario.name, util::TextTable::num(reply.healthy_images_per_sec, 1),
                         util::TextTable::num(reply.scenario_images_per_sec, 1),
                         util::TextTable::num(reply.throughput_retention, 3),
                         util::TextTable::num(reply.alive_rank_fraction, 3),
                         std::to_string(reply.membership_changes),
                         std::to_string(reply.cache_hits), std::to_string(reply.evaluated)});
          std::cout << table.to_text();
          std::cout << "bottleneck: " << prof::to_string(reply.verdict) << " ("
                    << reply.verdict_reason << ")\n";
        }
        if (cli.get_flag("check")) {
          const bool sane = reply.healthy_images_per_sec > 0.0 &&
                            reply.throughput_retention > 0.0 &&
                            reply.throughput_retention <= 1.0 + 1e-9;
          if (!sane) {
            std::cerr << "dnnperf_lint: survivability check failed (healthy="
                      << reply.healthy_images_per_sec
                      << " img/s, retention=" << reply.throughput_retention << ")\n";
            return 1;
          }
        }
      }
    } else if (verify_engine || verify_elastic || !trace_path.empty()) {
      // Verification modes replace the default lint families: CI runs them as
      // separate steps with separate artifacts.
      if (verify_engine || verify_elastic) {
        const auto verify = [&](const train::TrainConfig& cfg) {
          if (verify_engine) all.merge(analysis::verify_config_engine(cfg));
          if (verify_elastic) all.merge(analysis::verify_config_elastic(cfg));
        };
        if (!model_arg.empty() && !cluster_arg.empty()) {
          const auto cluster = hw::cluster_by_name(cluster_arg);
          train::TrainConfig cfg =
              core::tf_best(cluster, dnn::model_by_name(model_arg),
                            static_cast<int>(cli.get_int("nodes")));
          if (cli.get_int("ppn") > 0) cfg.ppn = static_cast<int>(cli.get_int("ppn"));
          verify(cfg);
        } else {
          for (const auto& cfg : shipped_presets()) verify(cfg);
        }
      }
      if (!trace_path.empty()) all.merge(analysis::verify_trace_file(trace_path));
    } else if (!model_arg.empty() && !cluster_arg.empty()) {
      // One explicit configuration.
      const auto cluster = hw::cluster_by_name(cluster_arg);
      train::TrainConfig cfg =
          core::tf_best(cluster, dnn::model_by_name(model_arg),
                        static_cast<int>(cli.get_int("nodes")));
      if (cli.get_int("ppn") > 0) cfg.ppn = static_cast<int>(cli.get_int("ppn"));
      if (cli.get_int("batch") > 0)
        cfg.batch_per_rank = static_cast<int>(cli.get_int("batch"));
      all.merge(analysis::lint_config(cfg));
    } else if (!model_arg.empty()) {
      all.merge(analysis::lint_graph(dnn::build_model(dnn::model_by_name(model_arg))));
    } else if (!cluster_arg.empty()) {
      all.merge(analysis::lint_cluster(hw::cluster_by_name(cluster_arg)));
    } else {
      if (cli.get_flag("models"))
        for (dnn::ModelId id : dnn::all_models())
          all.merge(analysis::lint_graph(dnn::build_model(id)));
      if (cli.get_flag("platforms")) {
        for (const auto& cpu : hw::all_cpus()) all.merge(analysis::lint_cpu(cpu));
        for (const auto& cluster : hw::all_clusters())
          all.merge(analysis::lint_cluster(cluster));
      }
      if (cli.get_flag("presets"))
        for (const auto& cfg : shipped_presets()) all.merge(analysis::lint_config(cfg));
    }
  } catch (const std::exception& e) {
    std::cerr << "dnnperf_lint: " << e.what() << "\n";
    return 2;
  }

  if (format == "json")
    std::cout << util::render_json(all);
  else if (format == "github")
    std::cout << util::render_github(all);
  else
    std::cout << util::render_text(all);

  if (all.has_errors()) return 1;
  if (cli.get_flag("strict") && all.count(util::Severity::Warn) > 0) return 1;
  return 0;
}
