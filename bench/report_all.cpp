// Regenerates every table/figure of the paper plus the Section IX insight
// checks in one run — the data source for EXPERIMENTS.md.
//
// Flags: --anchors-only prints just the anchor lines (for diffing against
// the committed EXPERIMENTS.md numbers).
#include <iostream>

#include "core/figures.hpp"
#include "core/insights.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  dnnperf::util::CliParser cli("report_all", "regenerate all paper figures and insights");
  cli.add_flag("anchors-only", "print only figure anchors", false);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool anchors_only = cli.get_flag("anchors-only");
    for (const auto& id : dnnperf::core::all_figure_ids()) {
      const auto figure = dnnperf::core::run_figure(id);
      if (anchors_only) {
        for (const auto& [key, value] : figure.anchors)
          std::cout << figure.id << "." << key << " = "
                    << dnnperf::util::TextTable::num(value, 3) << '\n';
      } else {
        std::cout << dnnperf::core::render(figure) << '\n';
      }
    }
    if (!anchors_only)
      std::cout << dnnperf::core::render_insights(dnnperf::core::evaluate_key_insights());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
