// Regenerates every table/figure of the paper plus the Section IX insight
// checks in one run — the data source for EXPERIMENTS.md.
//
// Flags: --anchors-only prints just the anchor lines (for diffing against
// the committed EXPERIMENTS.md numbers). --trace-out=FILE records a Chrome
// trace-event timeline of the whole report run (real kernels/engine plus the
// simulators' virtual-time tracks). --profile-out=FILE additionally runs the
// prof trace analytics over that recording and writes the
// dnnperf-profile-v1 report.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/figures.hpp"
#include "core/insights.hpp"
#include "prof/profile.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

int main(int argc, char** argv) {
  dnnperf::util::CliParser cli("report_all", "regenerate all paper figures and insights");
  cli.add_flag("anchors-only", "print only figure anchors", false);
  cli.add_string("trace-out", "write a Chrome trace-event JSON timeline here", "");
  cli.add_string("profile-out", "profile the recorded trace and write a dnnperf-profile-v1 "
                 "JSON report here (implies tracing)", "");
  cli.add_string("metrics-out", "write a metrics snapshot (dnnperf-metrics-v1 JSON) here", "");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const bool anchors_only = cli.get_flag("anchors-only");
    const std::string trace_out = cli.get_string("trace-out");
    const std::string profile_out = cli.get_string("profile-out");
    if (!trace_out.empty() || !profile_out.empty()) dnnperf::util::trace::set_enabled(true);
    const std::string metrics_out = cli.get_string("metrics-out");
    if (!metrics_out.empty()) dnnperf::util::metrics::set_enabled(true);
    for (const auto& id : dnnperf::core::all_figure_ids()) {
      const auto figure = dnnperf::core::run_figure(id);
      if (anchors_only) {
        for (const auto& [key, value] : figure.anchors)
          std::cout << figure.id << "." << key << " = "
                    << dnnperf::util::TextTable::num(value, 3) << '\n';
      } else {
        std::cout << dnnperf::core::render(figure) << '\n';
      }
    }
    if (!anchors_only)
      std::cout << dnnperf::core::render_insights(dnnperf::core::evaluate_key_insights());
    if (!trace_out.empty()) {
      dnnperf::util::trace::write_json_file(trace_out);
      std::cerr << "wrote " << dnnperf::util::trace::event_count() << " trace events to "
                << trace_out << '\n';
    }
    if (!profile_out.empty()) {
      std::ostringstream trace_doc;
      dnnperf::util::trace::write_json(trace_doc);
      const auto report =
          dnnperf::prof::profile_trace_text(trace_doc.str(), "report_all", {});
      std::ofstream out(profile_out);
      if (!out) throw std::runtime_error("cannot open " + profile_out);
      out << dnnperf::prof::to_json(report) << '\n';
      std::cerr << "profile: " << dnnperf::prof::to_string(report.verdict) << " -> "
                << profile_out << '\n';
    }
    if (!metrics_out.empty()) {
      auto snap = dnnperf::util::metrics::snapshot();
      snap.label = "report_all";
      dnnperf::util::metrics::write_json_file(snap, metrics_out);
      std::cerr << "wrote " << snap.metrics.size() << " metrics to " << metrics_out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
