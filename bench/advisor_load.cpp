// advisor_load: closed-loop load generator for core::AdvisorService (§6.6).
//
// Drives a repeated-query workload (distinct queries = models x frameworks x
// node counts, cycled) through three phases:
//
//   serial — the pre-service core::advise() equivalent: plan the grid, then
//            run_training on every point, one after another, no cache;
//   cold   — a fresh AdvisorService answers each distinct query once
//            (every grid point is a cache miss, fanned out on the pool);
//   warm   — the full query stream replayed against the now-hot cache from
//            --clients concurrent threads, --batch requests per ask_many.
//
// Reports qps per phase, the warm-phase cache hit rate, p50/p99 query
// latency (from the advisor_query_seconds histogram), and the service-over-
// serial speedup on the repeated workload; publishes all of it as
// advisor_*_queries_per_sec / advisor_speedup_vs_serial gauges so
// --metrics-out snapshots feed BENCH_metrics.json and dnnperf_metrics diff.
//
//   ./advisor_load                                   # full run, summary table
//   ./advisor_load --queries=400 --pool-threads=4 --check
//       --metrics-out=advisor.json    (CI smoke: deterministic counters;
//                                      exits 1 if the cache never hit or qps=0)
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "core/advisor_service.hpp"
#include "hw/platforms.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace dnnperf;

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The pre-service advisor: the exact work core::advise() did per call —
/// enumerate the grid, simulate every point serially, keep the best. No
/// cache, no pool, no reuse across calls.
core::Recommendation serial_sweep(const core::AdvisorRequest& request) {
  core::Recommendation rec;
  for (const train::TrainConfig& cfg : core::AdvisorService::plan_grid(request)) {
    const double v = train::run_training(cfg).images_per_sec;
    if (v > rec.images_per_sec) {
      rec.images_per_sec = v;
      rec.best = cfg;
    }
  }
  return rec;
}

std::vector<core::AdvisorRequest> make_workload(const hw::ClusterModel& cluster, int models) {
  static const dnn::ModelId kModels[] = {dnn::ModelId::ResNet50, dnn::ModelId::ResNet101,
                                         dnn::ModelId::ResNet152, dnn::ModelId::InceptionV3};
  static const exec::Framework kFrameworks[] = {exec::Framework::TensorFlow,
                                                exec::Framework::PyTorch};
  std::vector<core::AdvisorRequest> distinct;
  const int m = std::clamp(models, 1, 4);
  for (int i = 0; i < m; ++i) {
    for (const auto fw : kFrameworks) {
      for (const int nodes : {1, 2, 4}) {
        core::AdvisorRequest req;
        req.cluster = cluster;
        req.model = kModels[i];
        req.framework = fw;
        req.nodes = std::min(nodes, cluster.max_nodes);
        distinct.push_back(std::move(req));
      }
    }
  }
  return distinct;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("advisor_load",
                      "closed-loop load generator for the advisor service: serial-vs-"
                      "service A/B, cold-vs-warm cache, concurrent clients");
  cli.add_int("queries", "warm-phase queries across all clients", 2000);
  cli.add_int("serial-queries", "queries for the serial (pre-service) baseline", 5);
  cli.add_int("clients", "concurrent client threads in the warm phase", 1);
  cli.add_int("batch", "requests per ask_many() batch in the warm phase", 1);
  cli.add_int("pool-threads", "service evaluation pool width (0 = hardware)", 0);
  cli.add_int("models", "distinct models in the workload (1-4)", 3);
  cli.add_int("cache-capacity", "eval-cache capacity (measurements)", 1 << 16);
  cli.add_string("cluster", "platform to advise on", "Stampede2");
  cli.add_string("metrics-out", "write a metrics snapshot JSON here", "");
  cli.add_flag("check", "exit 1 unless warm hit rate > 0 and warm qps > 0", false);
  cli.add_double("min-warm-qps", "with --check: minimum warm queries/sec (0 = off)", 0.0);
  cli.add_double("min-speedup", "with --check: minimum service-over-serial speedup (0 = off)",
                 0.0);

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::metrics::set_enabled(true);

    const auto cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const auto distinct = make_workload(cluster, static_cast<int>(cli.get_int("models")));
    const auto total_queries = static_cast<std::size_t>(cli.get_int("queries"));
    const int clients = std::max(1, static_cast<int>(cli.get_int("clients")));
    const std::size_t batch = std::max<std::size_t>(1, static_cast<std::size_t>(cli.get_int("batch")));

    core::AdvisorServiceOptions opts;
    opts.threads = static_cast<int>(cli.get_int("pool-threads"));
    opts.cache_capacity = static_cast<std::size_t>(cli.get_int("cache-capacity"));
    core::AdvisorService service(opts);

    std::cout << "workload: " << distinct.size() << " distinct queries on " << cluster.name
              << ", service pool = " << service.threads() << " threads\n\n";

    // ---- serial baseline (the old advise(): re-simulate everything) --------
    const auto n_serial = std::min<std::size_t>(
        static_cast<std::size_t>(std::max<std::int64_t>(1, cli.get_int("serial-queries"))),
        total_queries == 0 ? 1 : total_queries);
    double t0 = now_s();
    for (std::size_t q = 0; q < n_serial; ++q) serial_sweep(distinct[q % distinct.size()]);
    const double serial_s = now_s() - t0;
    const double serial_qps = static_cast<double>(n_serial) / serial_s;

    // ---- cold: every distinct query once, all grid points simulated --------
    t0 = now_s();
    for (const auto& req : distinct) service.ask(req);
    const double cold_s = now_s() - t0;
    const double cold_qps = static_cast<double>(distinct.size()) / cold_s;
    const core::EvalCacheStats after_cold = service.cache().stats();

    // ---- warm: replay the stream from concurrent clients -------------------
    const std::size_t per_client = total_queries / static_cast<std::size_t>(clients);
    t0 = now_s();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<core::AdvisorRequest> reqs;
        for (std::size_t q = 0; q < per_client; q += reqs.size()) {
          reqs.clear();
          for (std::size_t b = 0; b < std::min(batch, per_client - q); ++b)
            reqs.push_back(
                distinct[(static_cast<std::size_t>(c) * per_client + q + b) % distinct.size()]);
          service.ask_many(reqs);
        }
      });
    }
    for (auto& t : threads) t.join();
    const double warm_s = now_s() - t0;
    const std::size_t warm_queries = per_client * static_cast<std::size_t>(clients);
    const double warm_qps = warm_s > 0.0 ? static_cast<double>(warm_queries) / warm_s : 0.0;

    const core::EvalCacheStats after_warm = service.cache().stats();
    const std::uint64_t warm_hits = after_warm.hits - after_cold.hits;
    const std::uint64_t warm_lookups =
        warm_hits + (after_warm.misses - after_cold.misses);
    const double warm_hit_rate =
        warm_lookups > 0 ? static_cast<double>(warm_hits) / static_cast<double>(warm_lookups)
                         : 0.0;
    const double speedup = serial_qps > 0.0 ? warm_qps / serial_qps : 0.0;

    // ---- publish + report --------------------------------------------------
    const auto serial_gauge = util::metrics::gauge(
        "advisor_serial_queries_per_sec", "Serial pre-service advise() sweep throughput");
    const auto cold_gauge = util::metrics::gauge(
        "advisor_cold_queries_per_sec", "Service throughput with an empty cache");
    const auto warm_gauge = util::metrics::gauge(
        "advisor_warm_queries_per_sec", "Service throughput with a hot cache");
    const auto speedup_gauge = util::metrics::gauge(
        "advisor_speedup_vs_serial", "Warm service qps over serial sweep qps");
    const auto hit_gauge = util::metrics::gauge(
        "advisor_warm_hit_rate", "Cache hit fraction during the warm phase");
    serial_gauge.set(serial_qps);
    cold_gauge.set(cold_qps);
    warm_gauge.set(warm_qps);
    speedup_gauge.set(speedup);
    hit_gauge.set(warm_hit_rate);

    const util::metrics::Snapshot snap = util::metrics::snapshot();
    double p50 = 0.0, p99 = 0.0;
    if (const auto* q = snap.find("advisor_query_seconds")) {
      p50 = q->hist.percentile(0.50);
      p99 = q->hist.percentile(0.99);
    }

    util::TextTable table({"phase", "queries", "qps", "note"});
    table.add_row({"serial", std::to_string(n_serial), util::TextTable::num(serial_qps, 1),
                   "old advise(): no cache, no pool"});
    table.add_row({"cold", std::to_string(distinct.size()), util::TextTable::num(cold_qps, 1),
                   std::to_string(after_cold.misses) + " evaluations on " +
                       std::to_string(service.threads()) + " threads"});
    table.add_row({"warm", std::to_string(warm_queries), util::TextTable::num(warm_qps, 1),
                   "hit rate " + util::TextTable::num(warm_hit_rate, 3) + ", " +
                       std::to_string(clients) + " client(s)"});
    std::cout << table.to_text() << "\n"
              << "speedup vs serial advise(): " << util::TextTable::num(speedup, 1) << "x\n"
              << "query latency p50 = " << util::TextTable::num(p50 * 1e6, 1)
              << " us, p99 = " << util::TextTable::num(p99 * 1e6, 1) << " us\n";

    if (const std::string& out = cli.get_string("metrics-out"); !out.empty()) {
      util::metrics::Snapshot labeled = snap;
      labeled.label = "advisor_load queries=" + std::to_string(warm_queries) +
                      " clients=" + std::to_string(clients) +
                      " pool=" + std::to_string(service.threads());
      util::metrics::write_json_file(labeled, out);
      std::cout << "wrote " << out << "\n";
    }

    if (cli.get_flag("check")) {
      bool ok = true;
      if (warm_hit_rate <= 0.0) {
        std::cerr << "CHECK FAILED: warm cache hit rate is zero\n";
        ok = false;
      }
      if (warm_qps <= 0.0) {
        std::cerr << "CHECK FAILED: warm qps is zero\n";
        ok = false;
      }
      if (const double min_qps = cli.get_double("min-warm-qps"); min_qps > 0.0 && warm_qps < min_qps) {
        std::cerr << "CHECK FAILED: warm qps " << warm_qps << " < " << min_qps << "\n";
        ok = false;
      }
      if (const double min_speedup = cli.get_double("min-speedup");
          min_speedup > 0.0 && speedup < min_speedup) {
        std::cerr << "CHECK FAILED: speedup " << speedup << "x < " << min_speedup << "x\n";
        ok = false;
      }
      if (!ok) return 1;
      std::cout << "check ok: hit rate " << util::TextTable::num(warm_hit_rate, 3) << ", "
                << util::TextTable::num(warm_qps, 1) << " qps\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "advisor_load: " << e.what() << "\n";
    return 2;
  }
  return 0;
}
