// sim_scale: rank-scale smoke for the pooled discrete-event timeline — the
// ISSUE-7 acceptance harness. Simulates one training config with every rank
// explicit (per-rank arenas + slab event pool) and reports how long the DES
// itself took on the wall clock, in contrast to every other bench which
// reports the *virtual* time the simulation predicts.
//
//   ./sim_scale --ranks=4096                        # 4k-rank ResNet-50 step
//   ./sim_scale --ranks=1024 --check --budget-s=10  # CI smoke: wall budget
//   ./sim_scale --ranks=4096 --hierarchy=two --metrics-out=sim.json
//   ./sim_scale --sweep=2,4,8,16,32,64,128          # scaling-efficiency curve
//
// Publishes the scale gauges (sim_ranks, sim_events_pooled_total,
// sim_step_wall_seconds) that dnnperf_metrics merge folds into
// BENCH_metrics.json; --check exits 1 when the wall clock misses --budget-s.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/advisor_service.hpp"
#include "dnn/models.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"

namespace {

using namespace dnnperf;

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

train::CommHierarchy parse_hierarchy(const std::string& name) {
  if (name == "flat") return train::CommHierarchy::Flat;
  if (name == "two") return train::CommHierarchy::TwoLevel;
  if (name == "three") return train::CommHierarchy::ThreeLevel;
  throw std::invalid_argument("--hierarchy must be flat|two|three, got '" + name + "'");
}

std::vector<int> parse_int_list(const std::string& text) {
  std::vector<int> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) out.push_back(std::stoi(item));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("sim_scale",
                      "rank-scale smoke for the pooled event timeline: simulate every rank "
                      "explicitly and gate the DES wall clock");
  cli.add_int("ranks", "total ranks to simulate explicitly", 4096);
  cli.add_int("ppn", "ranks per node", 16);
  cli.add_int("iterations", "training iterations per measurement", 3);
  cli.add_string("model", "DNN model to train", "resnet50");
  cli.add_string("cluster", "platform (max_nodes is raised to fit --ranks)", "Stampede2");
  cli.add_string("hierarchy", "collective hierarchy: flat|two|three", "flat");
  cli.add_string("sweep", "comma-separated node counts: print the scaling curve instead", "");
  cli.add_double("budget-s", "with --check: max DES wall seconds for the scale point", 10.0);
  cli.add_flag("check", "exit 1 if the wall clock exceeds --budget-s", false);
  cli.add_string("metrics-out", "write a metrics snapshot JSON here", "");

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::metrics::set_enabled(true);

    const int ppn = static_cast<int>(cli.get_int("ppn"));
    if (ppn <= 0) throw std::invalid_argument("--ppn must be positive");
    hw::ClusterModel cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const dnn::ModelId model = dnn::model_by_name(cli.get_string("model"));
    const auto hierarchy = parse_hierarchy(cli.get_string("hierarchy"));

    if (const std::string& sweep = cli.get_string("sweep"); !sweep.empty()) {
      core::ScalingRequest req;
      req.node_counts = parse_int_list(sweep);
      for (const int n : req.node_counts) cluster.max_nodes = std::max(cluster.max_nodes, n);
      req.cluster = cluster;
      req.model = model;
      req.ppn = ppn;
      req.hierarchy = hierarchy;
      core::AdvisorService service;
      util::TextTable table({"nodes", "ranks", "img/s", "step s", "speedup", "efficiency"});
      for (const auto& p : service.scaling_curve(req))
        table.add_row({std::to_string(p.nodes), std::to_string(p.ranks),
                       util::TextTable::num(p.images_per_sec, 1),
                       util::TextTable::num(p.per_iteration_s, 4),
                       util::TextTable::num(p.speedup, 2),
                       util::TextTable::num(p.efficiency, 3)});
      std::cout << table.to_text();
      return 0;
    }

    const int ranks = static_cast<int>(cli.get_int("ranks"));
    if (ranks <= 0 || ranks % ppn != 0)
      throw std::invalid_argument("--ranks must be a positive multiple of --ppn");
    const int nodes = ranks / ppn;
    cluster.max_nodes = std::max(cluster.max_nodes, nodes);

    train::TrainConfig cfg;
    cfg.cluster = cluster;
    cfg.model = model;
    cfg.nodes = nodes;
    cfg.ppn = ppn;
    cfg.iterations = static_cast<int>(cli.get_int("iterations"));
    cfg.use_horovod = ranks > 1;
    cfg.per_rank_sim = true;
    cfg.hierarchy = hierarchy;

    const double t0 = now_s();
    const train::TrainResult result = train::run_training(cfg);
    const double wall_s = now_s() - t0;
    const double events_per_sec =
        wall_s > 0.0 ? static_cast<double>(result.sim_events) / wall_s : 0.0;

    const auto ranks_gauge = util::metrics::gauge(
        "sim_ranks", "Ranks simulated explicitly in the most recent scale run");
    const auto events_gauge = util::metrics::gauge(
        "sim_events_pooled_total", "DES events processed through the slab pool in that run");
    const auto wall_gauge = util::metrics::gauge(
        "sim_step_wall_seconds", "Wall-clock seconds the pooled DES took for that run");
    ranks_gauge.set(static_cast<double>(result.sim_ranks));
    events_gauge.set(static_cast<double>(result.sim_events));
    wall_gauge.set(wall_s);

    util::TextTable table({"metric", "value"});
    table.add_row({"ranks", std::to_string(result.sim_ranks)});
    table.add_row({"nodes x ppn", std::to_string(nodes) + " x " + std::to_string(ppn)});
    table.add_row({"events processed", std::to_string(result.sim_events)});
    table.add_row({"pool slots (high water)", std::to_string(result.sim_pool_slots)});
    table.add_row({"virtual step time", util::TextTable::num(result.per_iteration_s, 4) + " s"});
    table.add_row({"modeled img/s", util::TextTable::num(result.images_per_sec, 1)});
    table.add_row({"DES wall clock", util::TextTable::num(wall_s, 3) + " s"});
    table.add_row({"DES events/sec", util::TextTable::num(events_per_sec, 0)});
    std::cout << table.to_text();

    if (const std::string& out = cli.get_string("metrics-out"); !out.empty()) {
      util::metrics::Snapshot snap = util::metrics::snapshot();
      snap.label = "sim_scale ranks=" + std::to_string(ranks) +
                   " hierarchy=" + cli.get_string("hierarchy");
      util::metrics::write_json_file(snap, out);
      std::cout << "wrote " << out << "\n";
    }

    if (cli.get_flag("check")) {
      const double budget = cli.get_double("budget-s");
      if (wall_s > budget) {
        std::cerr << "CHECK FAILED: " << ranks << "-rank step took "
                  << util::TextTable::num(wall_s, 3) << " s wall, budget " << budget << " s\n";
        return 1;
      }
      if (result.sim_events == 0 || result.sim_pool_slots == 0) {
        std::cerr << "CHECK FAILED: pooled engine reported no events\n";
        return 1;
      }
      std::cout << "check ok: " << util::TextTable::num(wall_s, 3) << " s wall within "
                << budget << " s budget\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "sim_scale: " << e.what() << "\n";
    return 2;
  }
}
