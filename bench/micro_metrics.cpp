// Microbenchmarks of the metrics registry's cost model: per-record cost in
// the three runtime states (disabled / enabled / compiled-out handles), the
// snapshot path, and the registry's effect on a real hot loop (GEMM with and
// without metrics enabled). The disabled case is the acceptance bar: one
// relaxed atomic load per call site, no measurable hot-path overhead.
#include <benchmark/benchmark.h>

#include <vector>

#include "ref/gemm.hpp"
#include "ref/tensor.hpp"
#include "ref/threadpool.hpp"
#include "util/metrics.hpp"

namespace {

using namespace dnnperf;
namespace metrics = util::metrics;

void counter_inc_disabled(benchmark::State& state) {
  metrics::set_enabled(false);
  const auto c = metrics::counter("bench_disabled_total");
  for (auto _ : state) c.inc();
}
BENCHMARK(counter_inc_disabled);

void counter_inc_enabled(benchmark::State& state) {
  metrics::set_enabled(true);
  const auto c = metrics::counter("bench_enabled_total");
  for (auto _ : state) c.inc();
  metrics::set_enabled(false);
}
BENCHMARK(counter_inc_enabled);

void histogram_observe_enabled(benchmark::State& state) {
  metrics::set_enabled(true);
  const auto h = metrics::histogram("bench_hist_seconds");
  double v = 1e-6;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1.0 ? v * 1.0001 : 1e-6;
  }
  metrics::set_enabled(false);
}
BENCHMARK(histogram_observe_enabled);

void scoped_timer_enabled(benchmark::State& state) {
  metrics::set_enabled(true);
  const auto h = metrics::histogram("bench_timer_seconds");
  for (auto _ : state) metrics::ScopedTimer t(h);
  metrics::set_enabled(false);
}
BENCHMARK(scoped_timer_enabled);

void snapshot_bench(benchmark::State& state) {
  metrics::set_enabled(true);
  const auto c = metrics::counter("bench_snapshot_total");
  c.inc(100);
  for (auto _ : state) benchmark::DoNotOptimize(metrics::snapshot());
  metrics::set_enabled(false);
}
BENCHMARK(snapshot_bench);

/// The overhead bar on a real hot path: a ResNet-sized GEMM with metrics
/// disabled vs enabled. Arg 0: 0 = disabled, 1 = enabled. The two must be
/// within noise of each other when disabled; the enabled delta is the cost
/// of one GemmMetricsScope per call (a clock pair + 4 shard writes).
void gemm_with_metrics(benchmark::State& state) {
  metrics::set_enabled(state.range(0) != 0);
  ref::ThreadPool pool(1);
  ref::Tensor a({196, 256}), b({256, 512}), c({196, 512});
  a.fill(0.5f);
  b.fill(0.25f);
  for (auto _ : state) {
    ref::gemm(a, b, c, pool, /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 196 * 256 * 512);
  metrics::set_enabled(false);
}
BENCHMARK(gemm_with_metrics)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
