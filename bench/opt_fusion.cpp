// opt_fusion: measured-vs-predicted payoff of the verified conv+BN fusion
// (§6.8). Two legs over the same small conv net:
//
//   measured  — the refdnn executable network, once as conv-bn-relu and once
//               with the BN folded into the conv weights via opt::fold_bn
//               (calibrated on the benchmark batch, so batch statistics and
//               folded statistics coincide); outputs are checked numerically
//               equivalent, then both forward paths are timed;
//   predicted — the same network as a dnn::Graph, run through the graph
//               optimizer at O0 vs O2 and priced by exec::CpuExecModel.
//
// Publishes opt_fusion_measured_speedup / opt_fusion_predicted_speedup /
// opt_fusion_prediction_error gauges plus the opt_fusion_forward_seconds
// timer pair so --metrics-out snapshots feed BENCH_metrics.json. --check
// exits 1 when the fused output diverges from the reference, when fusion
// fails to speed up the measured forward pass, or when the optimized exec
// estimate is not tighter than the unoptimized one.
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "dnn/graph.hpp"
#include "exec/config.hpp"
#include "exec/cpu_model.hpp"
#include "exec/placement.hpp"
#include "hw/platforms.hpp"
#include "opt/fold.hpp"
#include "opt/passes.hpp"
#include "ref/layers.hpp"
#include "ref/network.hpp"
#include "ref/threadpool.hpp"
#include "util/cli.hpp"
#include "util/diag.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dnnperf;

double now_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Channels {
  std::vector<float> mean;
  std::vector<float> var;  ///< biased, matching ref::batchnorm_forward
};

/// Per-channel batch statistics of a [N,C,H,W] activation tensor.
Channels channel_stats(const ref::Tensor& x) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const float m = static_cast<float>(n * h * w);
  Channels stats;
  stats.mean.assign(static_cast<std::size_t>(c), 0.0f);
  stats.var.assign(static_cast<std::size_t>(c), 0.0f);
  for (int ci = 0; ci < c; ++ci) {
    float mean = 0.0f;
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) mean += x.at4(ni, ci, hy, wx);
    mean /= m;
    float var = 0.0f;
    for (int ni = 0; ni < n; ++ni)
      for (int hy = 0; hy < h; ++hy)
        for (int wx = 0; wx < w; ++wx) {
          const float d = x.at4(ni, ci, hy, wx) - mean;
          var += d * d;
        }
    stats.mean[static_cast<std::size_t>(ci)] = mean;
    stats.var[static_cast<std::size_t>(ci)] = var / m;
  }
  return stats;
}

/// Mean forward-pass seconds over `iters` runs after `warmup` runs.
double time_forward(ref::Network& net, const ref::Tensor& x, int warmup, int iters) {
  for (int i = 0; i < warmup; ++i) net.forward(x);
  const double start = now_s();
  for (int i = 0; i < iters; ++i) net.forward(x);
  return (now_s() - start) / iters;
}

/// The benchmark network as a dnn::Graph, for the exec-model leg.
dnn::Graph make_graph(int channels, int size, int classes) {
  dnn::Graph g("opt-fusion-bench");
  const int in = g.input(3, size, size);
  const int conv = g.conv2d("conv1", in, channels, 3, 3, 1, 1, 1, 1, /*bias=*/true);
  const int bn = g.batch_norm("conv1/bn", conv);
  const int act = g.relu("conv1/relu", bn);
  const int pool = g.max_pool("pool1", act, 2, 2);
  g.matmul("fc", pool, classes);
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("opt_fusion",
                      "measured (refdnn) vs predicted (exec model) payoff of the verified "
                      "conv+BN fusion");
  cli.add_int("batch", "benchmark batch size", 16);
  cli.add_int("size", "input spatial size", 32);
  cli.add_int("channels", "conv output channels", 32);
  cli.add_int("classes", "dense-head outputs", 10);
  cli.add_int("iters", "timed forward passes per leg", 30);
  cli.add_int("warmup", "untimed forward passes per leg", 5);
  cli.add_int("threads", "refdnn pool threads", 2);
  cli.add_string("cluster", "platform for the exec-model leg", "Stampede2");
  cli.add_string("metrics-out", "write a metrics snapshot JSON here", "");
  cli.add_flag("check",
               "exit 1 unless the fused net matches numerically, fusion speeds up the "
               "measured forward pass, and the O2 exec estimate is tighter",
               false);

  try {
    if (!cli.parse(argc, argv)) return 0;
    util::metrics::set_enabled(true);

    const int batch = static_cast<int>(cli.get_int("batch"));
    const int size = static_cast<int>(cli.get_int("size"));
    const int channels = static_cast<int>(cli.get_int("channels"));
    const int classes = static_cast<int>(cli.get_int("classes"));
    const int iters = std::max(1, static_cast<int>(cli.get_int("iters")));
    const int warmup = static_cast<int>(cli.get_int("warmup"));
    const float eps = 1e-5f;

    ref::ThreadPool pool(static_cast<int>(cli.get_int("threads")));
    util::Rng rng(2019);

    // ---- reference network: conv -> bn -> relu -> pool -> dense ----------
    ref::Network net;
    auto& conv = net.add<ref::Conv2dLayer>("conv1", 3, channels, 3, ref::ConvSpec{1, 1},
                                           pool, rng);
    auto& bn = net.add<ref::BatchNormLayer>("conv1/bn", channels, eps);
    net.add<ref::ReLULayer>("conv1/relu", pool);
    net.add<ref::MaxPoolLayer>("pool1", 2, 2, pool);
    net.add<ref::FlattenLayer>("flat");
    auto& fc = net.add<ref::DenseLayer>("fc", channels * (size / 2) * (size / 2), classes,
                                        pool, rng);
    // Non-trivial BN parameters so the fold actually rescales and shifts.
    for (int c = 0; c < channels; ++c) {
      bn.gamma[static_cast<std::size_t>(c)] = 0.8f + 0.05f * static_cast<float>(c % 7);
      bn.beta[static_cast<std::size_t>(c)] = 0.1f * static_cast<float>(c % 5) - 0.2f;
    }

    const ref::SyntheticBatch data = ref::synthetic_batch(batch, 3, size, classes, rng);

    // ---- fold BN into the conv, calibrated on the benchmark batch --------
    // BN normalizes with the batch's own statistics, so calibrating on the
    // timed batch makes folded and live statistics coincide and the two
    // networks numerically equivalent on it.
    const ref::Tensor conv_out = conv.forward(data.images);
    const Channels stats = channel_stats(conv_out);

    ref::Network fused;
    auto& fconv = fused.add<ref::Conv2dLayer>("conv1", 3, channels, 3, ref::ConvSpec{1, 1},
                                              pool, rng);
    fused.add<ref::ReLULayer>("conv1/relu", pool);
    fused.add<ref::MaxPoolLayer>("pool1", 2, 2, pool);
    fused.add<ref::FlattenLayer>("flat");
    auto& ffc = fused.add<ref::DenseLayer>("fc", channels * (size / 2) * (size / 2), classes,
                                           pool, rng);
    const int fan = 3 * 3 * 3;  // in_c * kh * kw elements per output channel
    for (int o = 0; o < channels; ++o) {
      const opt::BnFold fold = opt::fold_bn(
          bn.gamma[static_cast<std::size_t>(o)], bn.beta[static_cast<std::size_t>(o)],
          stats.mean[static_cast<std::size_t>(o)], stats.var[static_cast<std::size_t>(o)],
          eps, conv.bias[static_cast<std::size_t>(o)]);
      for (int i = 0; i < fan; ++i)
        fconv.weight[static_cast<std::size_t>(o * fan + i)] =
            static_cast<float>(fold.scale) * conv.weight[static_cast<std::size_t>(o * fan + i)];
      fconv.bias[static_cast<std::size_t>(o)] = static_cast<float>(fold.bias);
    }
    ffc.weight = fc.weight;
    ffc.bias = fc.bias;

    // ---- numeric equivalence before timing anything ----------------------
    const ref::Tensor y_ref = net.forward(data.images);
    const ref::Tensor y_fused = fused.forward(data.images);
    float y_max = 0.0f;
    for (const float v : y_ref.flat()) y_max = std::max(y_max, std::abs(v));
    const float diff = ref::max_abs_diff(y_ref, y_fused);
    const bool equivalent = diff <= 1e-3f * std::max(1.0f, y_max);

    // ---- measured leg -----------------------------------------------------
    const double t_ref = time_forward(net, data.images, warmup, iters);
    const double t_fused = time_forward(fused, data.images, warmup, iters);
    const double measured = t_fused > 0.0 ? t_ref / t_fused : 0.0;

    // ---- predicted leg: same net as a dnn::Graph through O0 vs O2 --------
    const dnn::Graph g0 = make_graph(channels, size, classes);
    opt::OptOptions oo;
    oo.level = 2;
    const opt::OptResult opt_result = opt::optimize(g0, oo);
    if (!opt_result.ok()) {
      std::cerr << "opt_fusion: optimizer rejected its own rewrite\n"
                << util::render_text(opt_result.diags);
      return 1;
    }
    const auto cluster = hw::cluster_by_name(cli.get_string("cluster"));
    const exec::CpuExecModel model(cluster.node.cpu);
    exec::ExecConfig ec;
    ec.batch = batch;
    ec.intra_threads = static_cast<int>(cli.get_int("threads"));
    const exec::Placement placement = exec::place_rank(cluster.node.cpu, 1, ec.intra_threads);
    const double p_ref = model.forward(g0, ec, placement).duration;
    const double p_fused = model.forward(opt_result.graph, ec, placement).duration;
    const double predicted = p_fused > 0.0 ? p_ref / p_fused : 0.0;
    const double prediction_error =
        measured > 0.0 ? std::abs(predicted - measured) / measured : 0.0;

    // ---- report -----------------------------------------------------------
    util::TextTable table({"leg", "unfused", "fused", "speedup"});
    table.add_row({"measured fwd (ms)", std::to_string(t_ref * 1e3),
                   std::to_string(t_fused * 1e3), std::to_string(measured)});
    table.add_row({"predicted fwd (ms)", std::to_string(p_ref * 1e3),
                   std::to_string(p_fused * 1e3), std::to_string(predicted)});
    std::cout << table.to_text();
    std::cout << "rewrites applied: " << opt_result.log.rewrites.size()
              << " (ops " << opt_result.log.ops_before << " -> " << opt_result.log.ops_after
              << "), max |y_ref - y_fused| = " << diff
              << (equivalent ? " (equivalent)" : " (DIVERGED)") << "\n";
    std::cout << "prediction error vs measured: " << prediction_error * 100.0 << "%\n";

    static const auto measured_gauge = util::metrics::gauge(
        "opt_fusion_measured_speedup",
        "Measured refdnn forward speedup from the verified conv+BN fold");
    static const auto predicted_gauge = util::metrics::gauge(
        "opt_fusion_predicted_speedup",
        "Exec-model forward speedup predicted for the same fusion (O0 vs O2)");
    static const auto error_gauge = util::metrics::gauge(
        "opt_fusion_prediction_error",
        "Relative disagreement between predicted and measured fusion speedup");
    static const auto diff_gauge = util::metrics::gauge(
        "opt_fusion_max_abs_diff",
        "Max element difference between the fused and reference outputs");
    static const auto timer = util::metrics::histogram(
        "opt_fusion_forward_seconds", "Measured refdnn forward-pass time, both legs");
    measured_gauge.set(measured);
    predicted_gauge.set(predicted);
    error_gauge.set(prediction_error);
    diff_gauge.set(diff);
    timer.observe(t_ref);
    timer.observe(t_fused);

    if (const std::string& out = cli.get_string("metrics-out"); !out.empty()) {
      util::metrics::Snapshot snap = util::metrics::snapshot();
      snap.label = "opt_fusion batch=" + std::to_string(batch) +
                   " channels=" + std::to_string(channels);
      util::metrics::write_json_file(snap, out);
      std::cout << "metrics snapshot -> " << out << "\n";
    }

    if (cli.get_flag("check")) {
      if (!equivalent) {
        std::cerr << "opt_fusion: fused output diverged (" << diff << ")\n";
        return 1;
      }
      if (measured <= 1.0) {
        std::cerr << "opt_fusion: fusion did not speed up the measured forward pass ("
                  << measured << "x)\n";
        return 1;
      }
      if (predicted <= 1.0) {
        std::cerr << "opt_fusion: O2 exec estimate is not tighter than O0 (" << predicted
                  << "x)\n";
        return 1;
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "opt_fusion: " << e.what() << "\n";
    return 1;
  }
}
