// Ablation: per-rank compute jitter. Synchronous SGD waits for the slowest
// rank every iteration; the expected-max straggler penalty grows with the
// rank count and bends the scaling curve (it is part of why 128 nodes yield
// 125x rather than 128x in Fig 17).
#include <cstdio>
#include <iostream>

#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: compute jitter vs scaling (ResNet-152, Skylake-3) ===\n\n";
  util::TextTable table({"nodes", "jitter 0%", "jitter 2% (default)", "jitter 5%",
                         "speedup@2%"});
  double base_2pct = 0.0;
  for (int nodes : {1, 8, 32, 128}) {
    std::vector<std::string> row{std::to_string(nodes)};
    double at2 = 0.0;
    for (double cv : {0.0, 0.02, 0.05}) {
      auto cfg = core::tf_best(hw::stampede2(), dnn::ModelId::ResNet152, nodes);
      cfg.jitter_cv = cv;
      const double v = train::run_training(cfg).images_per_sec;
      if (cv == 0.02) at2 = v;
      row.push_back(util::TextTable::num(v, 0));
    }
    if (nodes == 1) base_2pct = at2;
    row.push_back(util::TextTable::num(at2 / base_2pct, 1) + "x");
    table.add_row(std::move(row));
  }
  std::cout << table.to_text();
  return 0;
}
