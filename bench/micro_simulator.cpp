// Microbenchmarks of the simulation machinery: discrete-event engine
// throughput, DNN graph construction, the CPU pass scheduler, and one full
// simulated training iteration.
#include <benchmark/benchmark.h>

#include "dnn/models.hpp"
#include "exec/cpu_model.hpp"
#include "hvd/timeline.hpp"
#include "hw/platforms.hpp"
#include "sim/engine.hpp"
#include "train/trainer.hpp"

namespace {

using namespace dnnperf;

void BM_EventEngine(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    int fired = 0;
    for (int i = 0; i < events; ++i)
      engine.schedule_at(static_cast<double>(i % 97), [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventEngine)->Arg(1000)->Arg(100000);

void BM_BuildModel(benchmark::State& state) {
  const auto id = static_cast<dnn::ModelId>(state.range(0));
  for (auto _ : state) {
    const dnn::Graph g = dnn::build_model(id);
    benchmark::DoNotOptimize(g.size());
  }
}
BENCHMARK(BM_BuildModel)
    ->Arg(static_cast<int>(dnn::ModelId::ResNet50))
    ->Arg(static_cast<int>(dnn::ModelId::ResNet152))
    ->Arg(static_cast<int>(dnn::ModelId::InceptionV4));

void BM_CpuPassSchedule(benchmark::State& state) {
  const dnn::Graph g = dnn::build_model(dnn::ModelId::ResNet152);
  const auto cpu = hw::stampede2().node.cpu;
  const exec::CpuExecModel model(cpu);
  exec::ExecConfig cfg;
  cfg.intra_threads = 11;
  cfg.inter_threads = 2;
  cfg.batch = 64;
  const exec::Placement placement = exec::place_rank(cpu, 4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.backward(g, cfg, placement).duration);
  }
  state.SetItemsProcessed(state.iterations() * g.size());
}
BENCHMARK(BM_CpuPassSchedule);

void BM_SimulatedTrainingRun(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  train::TrainConfig cfg;
  cfg.cluster = hw::stampede2();
  cfg.model = dnn::ModelId::ResNet50;
  cfg.nodes = nodes;
  cfg.ppn = 4;
  cfg.batch_per_rank = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(train::run_training(cfg).images_per_sec);
  }
}
BENCHMARK(BM_SimulatedTrainingRun)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
