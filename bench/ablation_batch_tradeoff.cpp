// Ablation: throughput vs time-to-accuracy across batch sizes at scale.
// The paper keeps batches modest "as they offer better convergence"
// (Section V-A); this quantifies the trade-off the authors navigated: at
// 128 nodes x 4 ppn, raising the per-rank batch keeps improving throughput
// but the effective batch blows past the large-minibatch limit and the
// estimated time-to-accuracy turns around.
#include <iostream>

#include "core/presets.hpp"
#include "core/time_to_train.hpp"
#include "hw/platforms.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: batch size vs time-to-accuracy "
               "(ResNet-50, 128 Skylake-3 nodes x 4 ppn) ===\n\n";
  auto cfg = core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 128);
  std::cout << core::batch_tradeoff_table(cfg, {4, 8, 16, 32, 64, 128}).to_text();
  std::cout << "\n(Statistical-efficiency model: 90 epochs to target accuracy up to an\n"
               "effective batch of 8192, then +35% epochs per further doubling — after\n"
               "Goyal et al., which the paper cites when bounding its batch sizes.)\n";
  return 0;
}
