// Recomputes the paper's Section IX "Key Insights" from the model and
// reports whether each qualitative claim holds, with measured numbers.
#include <iostream>

#include "core/insights.hpp"

int main() {
  const auto insights = dnnperf::core::evaluate_key_insights();
  std::cout << dnnperf::core::render_insights(insights);
  int failures = 0;
  for (const auto& i : insights)
    if (!i.holds) ++failures;
  return failures == 0 ? 0 : 1;
}
