// Shared entry point for the per-figure benchmark binaries. The figure id is
// baked in at compile time (DNNPERF_FIGURE_ID); the binary regenerates the
// corresponding paper table/figure and prints its series and anchors.
//
// Flags: --csv also emits machine-readable CSV after the text tables.
// --metrics-out=FILE records the figure run's metrics registry snapshot
// (dnnperf-metrics-v1 JSON) for dnnperf_metrics check/diff.
#include <iostream>

#include "core/figures.hpp"
#include "util/cli.hpp"
#include "util/metrics.hpp"

int main(int argc, char** argv) {
  dnnperf::util::CliParser cli(DNNPERF_FIGURE_ID,
                               "regenerates paper figure " DNNPERF_FIGURE_ID);
  cli.add_flag("csv", "also print CSV after the text tables", false);
  cli.add_string("metrics-out", "write a metrics snapshot (dnnperf-metrics-v1 JSON) here", "");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::string metrics_out = cli.get_string("metrics-out");
    if (!metrics_out.empty()) dnnperf::util::metrics::set_enabled(true);
    const auto figure = dnnperf::core::run_figure(DNNPERF_FIGURE_ID);
    std::cout << dnnperf::core::render(figure);
    if (cli.get_flag("csv"))
      for (const auto& table : figure.tables) std::cout << '\n' << table.to_csv();
    if (!metrics_out.empty()) {
      auto snap = dnnperf::util::metrics::snapshot();
      snap.label = DNNPERF_FIGURE_ID;
      dnnperf::util::metrics::write_json_file(snap, metrics_out);
      std::cerr << "wrote " << snap.metrics.size() << " metrics to " << metrics_out << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
