// Shared entry point for the per-figure benchmark binaries. The figure id is
// baked in at compile time (DNNPERF_FIGURE_ID); the binary regenerates the
// corresponding paper table/figure and prints its series and anchors.
//
// Flags: --csv also emits machine-readable CSV after the text tables.
#include <iostream>

#include "core/figures.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  dnnperf::util::CliParser cli(DNNPERF_FIGURE_ID,
                               "regenerates paper figure " DNNPERF_FIGURE_ID);
  cli.add_flag("csv", "also print CSV after the text tables", false);
  try {
    if (!cli.parse(argc, argv)) return 0;
    const auto figure = dnnperf::core::run_figure(DNNPERF_FIGURE_ID);
    std::cout << dnnperf::core::render(figure);
    if (cli.get_flag("csv"))
      for (const auto& table : figure.tables) std::cout << '\n' << table.to_csv();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
