// Ablation: allreduce strategy choice across message sizes and cluster
// scales. Shows why the MPI library (and our cost model's Auto policy)
// switches between recursive doubling (latency-bound) and the hierarchical
// shared-memory + ring scheme (bandwidth-bound), and what a naive flat ring
// would cost.
#include <cstdio>
#include <iostream>

#include "mpi/cost.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: allreduce algorithm selection ===\n\n";
  for (const auto& [nodes, ppn] : {std::pair{4, 4}, std::pair{32, 4}, std::pair{128, 4}}) {
    mpi::CollectiveCostModel cost(net::Topology(nodes, ppn, hw::FabricKind::OmniPath));
    util::TextTable table({"message", "recursive-doubling", "flat ring", "hierarchical",
                           "auto picks"});
    for (double bytes : {1e3, 64e3, 1e6, 16e6, 102e6, 240e6}) {
      const double rd = cost.recursive_doubling_time(bytes);
      const double ring = cost.ring_allreduce_time_flat(bytes);
      const double hier = cost.hierarchical_allreduce_time(bytes);
      table.add_row({util::format_bytes(bytes), util::format_time(rd), util::format_time(ring),
                     util::format_time(hier), rd <= hier ? "rec-doubling" : "hierarchical"});
    }
    std::printf("%d nodes x %d ppn:\n%s\n", nodes, ppn, table.to_text().c_str());
  }
  return 0;
}
