// Microbenchmarks of the minimpi substrate: real allreduce algorithms on the
// in-process thread backend, and the analytical cost model's evaluation rate.
#include <benchmark/benchmark.h>

#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/cost.hpp"
#include "mpi/world.hpp"

namespace {

using namespace dnnperf;

template <mpi::AllreduceAlgo Algo>
void BM_Allreduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    mpi::World::run(ranks, [&](mpi::Comm& comm) {
      std::vector<float> data(count, static_cast<float>(comm.rank()));
      mpi::allreduce(comm, std::span<float>(data), mpi::ReduceOp::Sum, Algo);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * ranks *
                          static_cast<std::int64_t>(count) * sizeof(float));
}

BENCHMARK(BM_Allreduce<mpi::AllreduceAlgo::Ring>)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({4, 65536})
    ->Args({8, 16384});
BENCHMARK(BM_Allreduce<mpi::AllreduceAlgo::RecursiveDoubling>)
    ->Args({2, 1024})
    ->Args({4, 1024})
    ->Args({8, 1024});
BENCHMARK(BM_Allreduce<mpi::AllreduceAlgo::Rabenseifner>)->Args({4, 65536})->Args({8, 16384});

void BM_Bcast(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World::run(ranks, [&](mpi::Comm& comm) {
      std::vector<float> data(4096, 1.0f);
      mpi::bcast(comm, std::span<float>(data), 0);
      benchmark::DoNotOptimize(data.data());
    });
  }
}
BENCHMARK(BM_Bcast)->Arg(2)->Arg(4)->Arg(8);

void BM_Barrier(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpi::World::run(ranks, [&](mpi::Comm& comm) {
      for (int i = 0; i < 10; ++i) comm.barrier();
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8);

void BM_CostModelEvaluation(benchmark::State& state) {
  mpi::CollectiveCostModel cost(net::Topology(128, 4, hw::FabricKind::OmniPath));
  double bytes = 1024.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.allreduce_time(bytes));
    bytes = bytes < 1e9 ? bytes * 1.5 : 1024.0;
  }
}
BENCHMARK(BM_CostModelEvaluation);

}  // namespace

BENCHMARK_MAIN();
