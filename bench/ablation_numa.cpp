// Ablation: NUMA placement penalties on/off. Replays the Fig 1 thread sweep
// (ResNet-50 SP on Skylake-1) and the Fig 6 SP-vs-MP comparison with the
// first-touch bandwidth and remote-compute penalties disabled — showing that
// NUMA locality is the mechanism behind both the 14-thread knee and the MP
// advantage.
#include <iostream>

#include "core/presets.hpp"
#include "exec/calibration.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: NUMA penalties on/off ===\n\n";

  auto sweep = [](const char* label) {
    util::TextTable table({"threads", "img/s"});
    for (int t : {8, 14, 20, 28}) {
      auto cfg = core::sp_baseline(hw::ri2_skylake(), dnn::ModelId::ResNet50, 128);
      cfg.intra_threads = t;
      cfg.inter_threads = 1;
      table.add_row({std::to_string(t),
                     util::TextTable::num(train::run_training(cfg).images_per_sec, 1)});
    }
    std::cout << label << " (ResNet-50 SP, Skylake-1, BS 128):\n" << table.to_text() << '\n';
  };

  auto mp_sp = [](const char* label) {
    const double sp = train::run_training(
                          core::sp_baseline(hw::stampede2(), dnn::ModelId::ResNet152, 256))
                          .images_per_sec;
    const double mp =
        train::run_training(core::tf_best(hw::stampede2(), dnn::ModelId::ResNet152, 1, 64))
            .images_per_sec;
    std::cout << label << ": MP/SP (ResNet-152, Skylake-3) = "
              << util::TextTable::num(mp / sp, 2) << "x\n\n";
  };

  sweep("with NUMA penalties (calibrated)");
  mp_sp("with NUMA penalties");

  exec::CpuCalibration no_numa = exec::cpu_calibration();
  no_numa.remote_bw_share = 1.0;     // remote sockets deliver full bandwidth
  no_numa.remote_flop_penalty = 0.0; // no cross-socket compute penalty
  exec::ScopedCpuCalibration guard(no_numa);

  sweep("without NUMA penalties");
  mp_sp("without NUMA penalties");
  return 0;
}
