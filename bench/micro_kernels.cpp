// Microbenchmarks of the refdnn numeric substrate: conv/dense/batchnorm
// kernels, the packed-vs-naive GEMM paths at real ResNet-50 layer shapes,
// and the thread pool's dispatch overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "ref/conv_fast.hpp"
#include "ref/gemm.hpp"
#include "ref/kernels.hpp"
#include "ref/network.hpp"

namespace {

using namespace dnnperf;

// Thread counts {1, 2, 4, #cores}, deduplicated and sorted.
std::vector<std::int64_t> bench_thread_counts() {
  std::vector<std::int64_t> t{1, 2, 4};
  const auto hw = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  if (hw > 0 && hw != 1 && hw != 2 && hw != 4) t.push_back(hw);
  std::sort(t.begin(), t.end());
  return t;
}

// ---------------------------------------------------------------------------
// GEMM at real ResNet-50 layer shapes, naive vs packed. Args:
// (path: 0=naive 1=packed, threads). Rate = GFLOP/s (items == flops).
//
// Shapes (batch 1, M = OH*OW per image):
//   conv3x3_256_14  3x3 conv, 256ch @ 14x14:  M=196,   K=2304, N=256
//   conv1x1_1024_14 bottleneck expand @14x14: M=196,   K=256,  N=1024
//   conv7x7_stem    7x7/2 stem, 3->64 @224:   M=12544, K=147,  N=64
// ---------------------------------------------------------------------------

void gemm_shape_bench(benchmark::State& state, int m, int k, int n) {
  const auto path = state.range(0) == 0 ? ref::GemmPath::naive : ref::GemmPath::packed;
  ref::ThreadPool pool(static_cast<int>(state.range(1)));
  util::Rng rng(11);
  const ref::Tensor a = ref::Tensor::randn({m, k}, rng);
  const ref::Tensor b = ref::Tensor::randn({k, n}, rng);
  ref::Tensor c({m, n});
  for (auto _ : state) {
    ref::gemm(a, b, c, pool, /*accumulate=*/false, path);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(m) * k * n);
  state.SetLabel(state.range(0) == 0 ? "naive" : "packed");
}

void register_gemm_benches() {
  struct Shape {
    const char* name;
    int m, k, n;
  };
  static constexpr Shape kShapes[] = {
      {"BM_GemmResNet50/conv3x3_256_14", 196, 2304, 256},
      {"BM_GemmResNet50/conv1x1_1024_14", 196, 256, 1024},
      {"BM_GemmResNet50/conv7x7_stem", 12544, 147, 64},
  };
  for (const auto& s : kShapes) {
    auto* bench = benchmark::RegisterBenchmark(
        s.name, [s](benchmark::State& st) { gemm_shape_bench(st, s.m, s.k, s.n); });
    for (std::int64_t path : {0, 1})
      for (std::int64_t threads : bench_thread_counts()) bench->Args({path, threads});
  }
}

// gemm_at (the weight-gradient GEMM) on the 3x3x256 @ 14x14 shape:
// dW'[2304, 256] = cols^T[2304, 196] * dY[196, 256].
void BM_GemmAtWeightGrad(benchmark::State& state) {
  const auto path = state.range(0) == 0 ? ref::GemmPath::naive : ref::GemmPath::packed;
  ref::ThreadPool pool(static_cast<int>(state.range(1)));
  util::Rng rng(12);
  const int m = 2304, k = 196, n = 256;
  const ref::Tensor a_t = ref::Tensor::randn({k, m}, rng);
  const ref::Tensor b = ref::Tensor::randn({k, n}, rng);
  ref::Tensor c({m, n});
  for (auto _ : state) {
    ref::gemm_at(a_t, b, c, pool, /*accumulate=*/false, path);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(m) * k * n);
  state.SetLabel(state.range(0) == 0 ? "naive" : "packed");
}

// Full conv forward (implicit GEMM vs materialized-im2col naive GEMM) at the
// ResNet-50 3x3x256 @ 14x14 layer, batch 4.
void BM_ConvForwardResNet50_3x3_256(benchmark::State& state) {
  const auto path = state.range(0) == 0 ? ref::GemmPath::naive : ref::GemmPath::packed;
  ref::ThreadPool pool(static_cast<int>(state.range(1)));
  util::Rng rng(13);
  const int batch = 4;
  const ref::Tensor x = ref::Tensor::randn({batch, 256, 14, 14}, rng);
  const ref::Tensor w = ref::Tensor::randn({256, 256, 3, 3}, rng, 0.05f);
  const ref::Tensor b = ref::Tensor::zeros({256});
  for (auto _ : state) {
    const auto y = ref::conv2d_forward_gemm(x, w, b, ref::ConvSpec{1, 1}, pool, path);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * batch * 14 * 14 * 256 * 256 * 9;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * flops));
  state.SetLabel(state.range(0) == 0 ? "naive" : "packed");
}

// 7x7/2 stem conv (3->64 @ 224x224), batch 1: the im2col-buffer killer —
// the materialized path builds a 12544 x 147 matrix per image, the implicit
// path packs panels on the fly.
void BM_ConvForwardResNet50_Stem(benchmark::State& state) {
  const auto path = state.range(0) == 0 ? ref::GemmPath::naive : ref::GemmPath::packed;
  ref::ThreadPool pool(static_cast<int>(state.range(1)));
  util::Rng rng(14);
  const ref::Tensor x = ref::Tensor::randn({1, 3, 224, 224}, rng);
  const ref::Tensor w = ref::Tensor::randn({64, 3, 7, 7}, rng, 0.05f);
  const ref::Tensor b = ref::Tensor::zeros({64});
  for (auto _ : state) {
    const auto y = ref::conv2d_forward_gemm(x, w, b, ref::ConvSpec{2, 3}, pool, path);
    benchmark::DoNotOptimize(y.data());
  }
  const double flops = 2.0 * 112 * 112 * 64 * 3 * 49;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * flops));
  state.SetLabel(state.range(0) == 0 ? "naive" : "packed");
}

void register_path_thread_args(benchmark::internal::Benchmark* bench) {
  for (std::int64_t path : {0, 1})
    for (std::int64_t threads : bench_thread_counts()) bench->Args({path, threads});
}
BENCHMARK(BM_GemmAtWeightGrad)->Apply(register_path_thread_args);
BENCHMARK(BM_ConvForwardResNet50_3x3_256)->Apply(register_path_thread_args);
BENCHMARK(BM_ConvForwardResNet50_Stem)->Apply(register_path_thread_args);

void BM_Conv2dForward(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ref::ThreadPool pool(threads);
  util::Rng rng(1);
  const ref::Tensor x = ref::Tensor::randn({4, 8, 16, 16}, rng);
  const ref::Tensor w = ref::Tensor::randn({16, 8, 3, 3}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({16});
  for (auto _ : state) {
    const auto y = ref::conv2d_forward(x, w, b, ref::ConvSpec{1, 1}, pool);
    benchmark::DoNotOptimize(y.data());
  }
  // 2 * MACs per iteration.
  const double macs = 16.0 * 16 * 16 * 8 * 9 * 4;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2 * macs));
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dBackward(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(2);
  const ref::Tensor x = ref::Tensor::randn({2, 8, 12, 12}, rng);
  const ref::Tensor w = ref::Tensor::randn({8, 8, 3, 3}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({8});
  const auto y = ref::conv2d_forward(x, w, b, ref::ConvSpec{1, 1}, pool);
  util::Rng rng2(3);
  const ref::Tensor dy = ref::Tensor::randn(y.shape(), rng2);
  for (auto _ : state) {
    ref::Tensor dx, dw, db;
    ref::conv2d_backward(x, w, dy, ref::ConvSpec{1, 1}, dx, dw, db, pool);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_DenseForward(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(4);
  const ref::Tensor x = ref::Tensor::randn({32, 256}, rng);
  const ref::Tensor w = ref::Tensor::randn({256, 128}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({128});
  for (auto _ : state) {
    const auto y = ref::dense_forward(x, w, b, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 32 * 256 * 128);
}
BENCHMARK(BM_DenseForward);

void BM_BatchNormForward(benchmark::State& state) {
  util::Rng rng(5);
  const ref::Tensor x = ref::Tensor::randn({8, 16, 16, 16}, rng);
  ref::Tensor gamma = ref::Tensor::zeros({16});
  gamma.fill(1.0f);
  const ref::Tensor beta = ref::Tensor::zeros({16});
  for (auto _ : state) {
    ref::BatchNormCache cache;
    const auto y = ref::batchnorm_forward(x, gamma, beta, 1e-5f, cache);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_ParallelForOverhead(benchmark::State& state) {
  ref::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t sum = 0;
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      benchmark::DoNotOptimize(sum += e - b);
    });
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void BM_TrainStepTinyCnn(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(6);
  ref::Network net = ref::make_tiny_cnn(3, 8, 4, pool, rng);
  util::Rng data_rng(7);
  const auto batch = ref::synthetic_batch(8, 3, 8, 4, data_rng);
  ref::SgdOptimizer sgd(0.05f);
  for (auto _ : state) {
    const float loss = net.train_step(batch.images, batch.labels);
    sgd.step(net.params());
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_TrainStepTinyCnn);

}  // namespace

int main(int argc, char** argv) {
  register_gemm_benches();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
