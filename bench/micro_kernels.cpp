// Microbenchmarks of the refdnn numeric substrate: conv/dense/batchnorm
// kernels and the thread pool's dispatch overhead.
#include <benchmark/benchmark.h>

#include "ref/kernels.hpp"
#include "ref/network.hpp"

namespace {

using namespace dnnperf;

void BM_Conv2dForward(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ref::ThreadPool pool(threads);
  util::Rng rng(1);
  const ref::Tensor x = ref::Tensor::randn({4, 8, 16, 16}, rng);
  const ref::Tensor w = ref::Tensor::randn({16, 8, 3, 3}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({16});
  for (auto _ : state) {
    const auto y = ref::conv2d_forward(x, w, b, ref::ConvSpec{1, 1}, pool);
    benchmark::DoNotOptimize(y.data());
  }
  // 2 * MACs per iteration.
  const double macs = 16.0 * 16 * 16 * 8 * 9 * 4;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2 * macs));
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(2)->Arg(4);

void BM_Conv2dBackward(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(2);
  const ref::Tensor x = ref::Tensor::randn({2, 8, 12, 12}, rng);
  const ref::Tensor w = ref::Tensor::randn({8, 8, 3, 3}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({8});
  const auto y = ref::conv2d_forward(x, w, b, ref::ConvSpec{1, 1}, pool);
  util::Rng rng2(3);
  const ref::Tensor dy = ref::Tensor::randn(y.shape(), rng2);
  for (auto _ : state) {
    ref::Tensor dx, dw, db;
    ref::conv2d_backward(x, w, dy, ref::ConvSpec{1, 1}, dx, dw, db, pool);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_DenseForward(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(4);
  const ref::Tensor x = ref::Tensor::randn({32, 256}, rng);
  const ref::Tensor w = ref::Tensor::randn({256, 128}, rng, 0.1f);
  const ref::Tensor b = ref::Tensor::zeros({128});
  for (auto _ : state) {
    const auto y = ref::dense_forward(x, w, b, pool);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 32 * 256 * 128);
}
BENCHMARK(BM_DenseForward);

void BM_BatchNormForward(benchmark::State& state) {
  util::Rng rng(5);
  const ref::Tensor x = ref::Tensor::randn({8, 16, 16, 16}, rng);
  ref::Tensor gamma = ref::Tensor::zeros({16});
  gamma.fill(1.0f);
  const ref::Tensor beta = ref::Tensor::zeros({16});
  for (auto _ : state) {
    ref::BatchNormCache cache;
    const auto y = ref::batchnorm_forward(x, gamma, beta, 1e-5f, cache);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_ParallelForOverhead(benchmark::State& state) {
  ref::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::size_t sum = 0;
    pool.parallel_for(64, [&](std::size_t b, std::size_t e) {
      benchmark::DoNotOptimize(sum += e - b);
    });
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

void BM_TrainStepTinyCnn(benchmark::State& state) {
  ref::ThreadPool pool(2);
  util::Rng rng(6);
  ref::Network net = ref::make_tiny_cnn(3, 8, 4, pool, rng);
  util::Rng data_rng(7);
  const auto batch = ref::synthetic_batch(8, 3, 8, 4, data_rng);
  ref::SgdOptimizer sgd(0.05f);
  for (auto _ : state) {
    const float loss = net.train_step(batch.images, batch.labels);
    sgd.step(net.params());
    benchmark::DoNotOptimize(loss);
  }
}
BENCHMARK(BM_TrainStepTinyCnn);

}  // namespace

BENCHMARK_MAIN();
