// Ablation: process placement vs NUMA topology. Sweeps ppn on every CPU
// platform and reports single-node ResNet-50 throughput — the best ppn
// tracks the socket/NUMA-domain layout (2 sockets on the Xeons, 8 dies on
// EPYC), which is the mechanism behind the paper's Section IX ppn rules.
#include <cstdio>
#include <iostream>

#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: ppn vs NUMA layout (TensorFlow ResNet-50, single node) ===\n\n";
  util::TextTable table({"platform", "NUMA domains", "ppn=1", "ppn=2", "ppn=4", "ppn=8",
                         "ppn=16", "best"});
  for (const auto& cluster : {hw::ri2_skylake(), hw::pitzer(), hw::stampede2(),
                              hw::ri2_broadwell(), hw::amd_cluster()}) {
    std::vector<std::string> row{cluster.node.cpu.label,
                                 std::to_string(cluster.node.cpu.numa_domains())};
    double best = 0.0;
    int best_ppn = 1;
    for (int ppn : {1, 2, 4, 8, 16}) {
      train::TrainConfig cfg;
      cfg.cluster = cluster;
      cfg.model = dnn::ModelId::ResNet50;
      cfg.ppn = ppn;
      cfg.batch_per_rank = 256 / ppn;
      cfg.use_horovod = ppn > 1;
      const double v = train::run_training(cfg).images_per_sec;
      row.push_back(util::TextTable::num(v, 1));
      if (v > best) {
        best = v;
        best_ppn = ppn;
      }
    }
    row.push_back("ppn=" + std::to_string(best_ppn));
    table.add_row(std::move(row));
  }
  std::cout << table.to_text();
  return 0;
}
