// Ablation: Horovod tensor fusion. Sweeps HOROVOD_FUSION_THRESHOLD from
// "no fusion" (every gradient tensor gets its own allreduce) to the 64 MiB
// default, for TensorFlow and PyTorch profiles on 8 Skylake-3 nodes.
#include <cstdio>
#include <iostream>

#include "core/presets.hpp"
#include "hw/platforms.hpp"
#include "train/trainer.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace dnnperf;
  std::cout << "=== ablation: tensor fusion threshold (8 Skylake-3 nodes) ===\n\n";
  for (const bool pytorch : {false, true}) {
    util::TextTable table(
        {"threshold", "img/s", "data allreduces", "engine wakeups", "exposed comm"});
    for (double threshold :
         {4.0, 256e3, 2e6, 16e6, 64.0 * 1024 * 1024}) {
      auto cfg = pytorch ? core::pytorch_best(hw::stampede2(), dnn::ModelId::ResNet50, 8)
                         : core::tf_best(hw::stampede2(), dnn::ModelId::ResNet50, 8);
      cfg.policy.fusion_threshold_bytes = threshold;
      const auto r = train::run_training(cfg);
      table.add_row({util::format_bytes(threshold), util::TextTable::num(r.images_per_sec, 1),
                     std::to_string(r.comm.data_allreduces),
                     std::to_string(r.comm.engine_wakeups),
                     util::TextTable::num(r.comm_exposed_fraction * 100, 2) + "%"});
    }
    std::printf("%s ResNet-50:\n%s\n", pytorch ? "PyTorch" : "TensorFlow",
                table.to_text().c_str());
  }
  return 0;
}
