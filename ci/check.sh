#!/usr/bin/env bash
# Tier-1 CI gate: build and test the default preset, then the sanitizer
# presets (ASan+UBSan, TSan, standalone UBSan with no recovery). The ASan and
# TSan runs use the preset filters in CMakePresets.json — deterministic
# unit/integration suites, not the timing-sensitive benches; the ubsan leg
# runs the full suite and aborts on the first finding. After the default
# preset, a metrics smoke step records a 2-rank training snapshot, lints it,
# and diffs its counters against the committed BENCH_metrics.json baseline
# (timers and rates are machine-dependent and ignored; counter drift fails),
# and a verify smoke step model-checks the shipped presets' engine protocol
# and runs the happens-before verifier over a freshly recorded 2-rank trace
# (findings surface as GitHub annotations in the CI log).
# Run from the repo root:
#
#   ci/check.sh            # all four presets
#   ci/check.sh default    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan ubsan)
fi

metrics_smoke() {
  local build=build
  local snap="$build/metrics_smoke.json"
  echo "=== [default] metrics smoke ==="
  "$build/examples/real_training" --ranks=2 --steps=2 --metrics-out="$snap" > /dev/null
  "$build/tools/dnnperf_metrics" check "$snap"
  "$build/tools/dnnperf_metrics" diff BENCH_metrics.json "$snap" \
      --timers=ignore --rates=ignore
}

verify_smoke() {
  local build=build
  local trace="$build/verify_smoke.trace.json"
  echo "=== [default] verify smoke ==="
  "$build/tools/dnnperf_lint" --verify-engine --format=github
  "$build/examples/real_training" --ranks=2 --steps=2 --trace-out="$trace" > /dev/null
  "$build/tools/dnnperf_lint" --verify-trace="$trace" --format=github
}

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset"
  if [ "$preset" = default ]; then
    metrics_smoke
    verify_smoke
  fi
done

echo "=== all presets passed: ${presets[*]} ==="
