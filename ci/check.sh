#!/usr/bin/env bash
# Tier-1 CI gate: build and test the default preset, then the sanitizer
# presets (ASan+UBSan, TSan, standalone UBSan with no recovery). The ASan and
# TSan runs use the preset filters in CMakePresets.json — deterministic
# unit/integration suites, not the timing-sensitive benches; the ubsan leg
# runs the full suite and aborts on the first finding. After the default
# preset, an advisor smoke step drives a short deterministic advisor_load run
# (fails unless the warm cache hit and qps > 0), a sim-scale smoke simulates
# a 1024-rank step through the pooled event engine under a wall-clock budget,
# an optimizer smoke step runs the verified graph-rewrite passes over every
# shipped model (any equivalence-checker O-code fails as a GitHub
# annotation) and gates the measured-vs-predicted conv+BN fusion payoff,
# a profile smoke step records a 2-rank training trace and runs the
# dnnperf_profile trace analytics over it (bottleneck verdict + DES
# comparison; Error-severity findings fail), a metrics smoke step records a
# 2-rank training snapshot plus the advisor_load, sim_scale, opt_fusion, and
# profile snapshots, lints all five, merges them, and diffs the merged
# counters against the committed BENCH_metrics.json baseline (timers and
# rates are machine-dependent and ignored; counter drift fails), and a
# verify smoke step model-checks the shipped presets' engine protocol and
# runs the happens-before verifier over a freshly recorded 2-rank trace
# (findings surface as GitHub annotations in the CI log), and an elastic
# verify smoke step model-checks crash/rejoin interleavings for every
# shipped preset and prices a canned crash+rejoin scenario through the
# advisor's survivability query.
# Run from the repo root:
#
#   ci/check.sh            # all four presets
#   ci/check.sh default    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan ubsan)
fi

# Short deterministic advisor_load run: fixed pool width and query counts so
# every advisor/pool/sim counter lands on the same totals on any machine.
# --check exits non-zero unless the warm cache actually hit and qps > 0.
advisor_smoke() {
  local build=build
  echo "=== [default] advisor smoke ==="
  "$build/bench/advisor_load" --queries=200 --serial-queries=2 --clients=2 --batch=4 \
      --pool-threads=4 --check --metrics-out="$build/metrics_smoke_advisor.json"
}

# 1k-rank pooled-DES smoke: every rank simulated explicitly through the slab
# event pool, gated on wall clock (the acceptance budget is 10 s at 4k ranks;
# 1k ranks under 10 s is generous on any CI machine, and a pooling regression
# blows straight past it).
sim_scale_smoke() {
  local build=build
  echo "=== [default] sim scale smoke ==="
  "$build/bench/sim_scale" --ranks=1024 --ppn=16 --hierarchy=two --check --budget-s=10 \
      --metrics-out="$build/metrics_smoke_sim.json"
}

# Verified graph-rewrite smoke: every shipped model must optimize
# checker-clean at O2 (O-codes annotate the CI log), and the conv+BN fusion
# must hold up numerically and pay off in both the measured refdnn forward
# pass and the exec-model estimate.
optimizer_smoke() {
  local build=build
  echo "=== [default] optimizer smoke ==="
  "$build/tools/dnnperf_lint" --optimize --format=github
  "$build/bench/opt_fusion" --check --metrics-out="$build/metrics_smoke_opt.json"
}

# Trace-analytics smoke: profile a freshly recorded 2-rank training trace
# (utilization, critical path, straggler attribution, verdict) and run the
# predicted-vs-measured DES comparison. dnnperf_profile exits non-zero only
# on Error-severity findings (e.g. no step structure); the JSON report must
# carry a verdict. Also publishes the prof_* gauges for the metrics merge.
profile_smoke() {
  local build=build
  local trace="$build/profile_smoke.trace.json"
  local report="$build/profile_smoke.json"
  echo "=== [default] profile smoke ==="
  "$build/examples/real_training" --ranks=2 --steps=2 --trace-out="$trace" > /dev/null
  "$build/tools/dnnperf_profile" "$trace" --compare-sim --format=json --out="$report" \
      --metrics-out="$build/metrics_smoke_profile.json"
  grep -q '"verdict"' "$report"
  grep -q '"compare_sim"' "$report"
}

metrics_smoke() {
  local build=build
  local train_snap="$build/metrics_smoke_training.json"
  local advisor_snap="$build/metrics_smoke_advisor.json"  # from advisor_smoke
  local sim_snap="$build/metrics_smoke_sim.json"          # from sim_scale_smoke
  local opt_snap="$build/metrics_smoke_opt.json"          # from optimizer_smoke
  local prof_snap="$build/metrics_smoke_profile.json"     # from profile_smoke
  local merged="$build/metrics_smoke.json"
  echo "=== [default] metrics smoke ==="
  "$build/examples/real_training" --ranks=2 --steps=2 --metrics-out="$train_snap" > /dev/null
  "$build/tools/dnnperf_metrics" check "$train_snap"
  "$build/tools/dnnperf_metrics" check "$advisor_snap"
  "$build/tools/dnnperf_metrics" check "$sim_snap"
  "$build/tools/dnnperf_metrics" check "$opt_snap"
  "$build/tools/dnnperf_metrics" check "$prof_snap"
  "$build/tools/dnnperf_metrics" merge "$train_snap" "$advisor_snap" "$sim_snap" "$opt_snap" \
      "$prof_snap" \
      --label="ci smoke: real_training + advisor_load + sim_scale + opt_fusion + profile" \
      --bench-out="$merged"
  "$build/tools/dnnperf_metrics" diff BENCH_metrics.json "$merged" \
      --timers=ignore --rates=ignore
}

verify_smoke() {
  local build=build
  local trace="$build/verify_smoke.trace.json"
  echo "=== [default] verify smoke ==="
  "$build/tools/dnnperf_lint" --verify-engine --format=github
  "$build/examples/real_training" --ranks=2 --steps=2 --trace-out="$trace" > /dev/null
  "$build/tools/dnnperf_lint" --verify-trace="$trace" --format=github
}

# Elastic verify smoke: model-check every shipped preset's crash/rejoin
# handling (V2xx annotate the CI log), then price one canned crash+rejoin
# scenario through the advisor's survivability query. --check fails unless
# the reply is sane (healthy throughput > 0, retention in (0, 1]).
elastic_verify_smoke() {
  local build=build
  echo "=== [default] elastic verify smoke ==="
  "$build/tools/dnnperf_lint" --verify-elastic --format=github
  "$build/tools/dnnperf_lint" --scenario=examples/scenarios/crash_rejoin.json \
      --cluster=Stampede2 --model=resnet50 --nodes=2 --check
}

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset"
  if [ "$preset" = default ]; then
    advisor_smoke
    sim_scale_smoke
    optimizer_smoke
    profile_smoke
    metrics_smoke
    verify_smoke
    elastic_verify_smoke
  fi
done

echo "=== all presets passed: ${presets[*]} ==="
