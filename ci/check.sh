#!/usr/bin/env bash
# Tier-1 CI gate: build and test the default preset, then the sanitizer
# presets (ASan+UBSan, TSan, standalone UBSan with no recovery). The ASan and
# TSan runs use the preset filters in CMakePresets.json — deterministic
# unit/integration suites, not the timing-sensitive benches; the ubsan leg
# runs the full suite and aborts on the first finding. Run from the repo root:
#
#   ci/check.sh            # all four presets
#   ci/check.sh default    # just one
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default asan tsan ubsan)
fi

for preset in "${presets[@]}"; do
  echo "=== [$preset] configure ==="
  cmake --preset "$preset"
  echo "=== [$preset] build ==="
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "=== [$preset] ctest ==="
  ctest --preset "$preset"
done

echo "=== all presets passed: ${presets[*]} ==="
