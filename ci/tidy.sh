#!/usr/bin/env bash
# clang-tidy leg of CI: runs the curated .clang-tidy check set over src/ and
# tools/ using the compile database of the default preset. Any finding fails
# (WarningsAsErrors: '*').
#
#   ci/tidy.sh                 # whole tree
#   ci/tidy.sh src/analysis    # one directory
#
# Containers without clang-tidy (the default toolchain here is GCC-only) skip
# with exit 0 so the rest of CI still runs; the check is advisory until the
# tool is present.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "ci/tidy.sh: clang-tidy not found; skipping (install LLVM to enable this leg)"
  exit 0
fi

build_dir=build
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "=== [tidy] configure default preset for compile_commands.json ==="
  cmake --preset default >/dev/null
fi

roots=("$@")
if [ ${#roots[@]} -eq 0 ]; then
  roots=(src tools)
fi

mapfile -t files < <(find "${roots[@]}" -name '*.cpp' | sort)
echo "=== [tidy] ${#files[@]} files ==="
clang-tidy -p "$build_dir" --quiet "${files[@]}"
echo "=== [tidy] clean ==="
